#include "serving/residency.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/saturate.h"
#include "lut/broadcast_codec.h"
#include "lut/capacity.h"
#include "serving/fault.h"

namespace localut {

const char*
residencyPolicyName(ResidencyPolicy policy)
{
    switch (policy) {
      case ResidencyPolicy::Disabled:  return "disabled";
      case ResidencyPolicy::CostAware: return "cost-aware";
      case ResidencyPolicy::Lru:       return "lru";
    }
    LOCALUT_PANIC("invalid residency policy");
}

namespace {

/** Sentinel "no stream is protected" id for makeRoomOnRankLocked (stream
 * ids are engine-assigned and never this value). */
constexpr std::uint64_t kNoProtectedStream =
    std::numeric_limits<std::uint64_t>::max();

std::uint64_t
roundInstances(double instances)
{
    return static_cast<std::uint64_t>(
        std::llround(std::max(1.0, instances)));
}

} // namespace

std::size_t
KvCacheKeyHash::operator()(const KvCacheKey& key) const
{
    std::size_t seed = 0;
    hashCombine(seed, static_cast<std::size_t>(key.stream));
    hashCombine(seed, key.layer);
    return seed;
}

std::size_t
TableSetKeyHash::operator()(const TableSetKey& key) const
{
    std::size_t seed = 0;
    hashCombine(seed, std::hash<std::string>{}(key.scope));
    hashCombine(seed, key.m);
    hashCombine(seed, key.k);
    hashCombine(seed, key.n);
    hashCombine(seed,
                static_cast<std::size_t>(key.config.weightCodec.kind()));
    hashCombine(seed, key.config.weightCodec.bits());
    hashCombine(seed, static_cast<std::size_t>(key.config.actCodec.kind()));
    hashCombine(seed, key.config.actCodec.bits());
    hashCombine(seed, static_cast<std::size_t>(key.design));
    hashCombine(seed, key.p);
    hashCombine(seed, key.shard.numRanks);
    hashCombine(seed, static_cast<std::size_t>(key.shard.strategy));
    hashCombine(seed, key.shard.align);
    hashCombine(seed, key.shard.numNodes);
    hashCombine(seed, static_cast<std::size_t>(key.instances));
    hashCombine(seed, key.homeRank);
    return seed;
}

TableSetKey
tableSetKeyFor(const GemmPlan& plan, const std::string& scope,
               double instances, unsigned homeRank)
{
    TableSetKey key;
    key.scope = scope;
    key.m = plan.m;
    key.k = plan.k;
    key.n = plan.n;
    key.config = plan.config;
    key.design = plan.design;
    key.p = std::max(1u, plan.p);
    key.instances = roundInstances(instances);
    key.homeRank = homeRank;
    return key;
}

std::uint64_t
tableSetBytes(const GemmPlan& plan)
{
    const LutShape shape(plan.config, std::max(1u, plan.p));
    switch (plan.design) {
      case DesignPoint::NaivePim:
        return 0; // arithmetic MACs: no tables at all
      case DesignPoint::Ltc:
        return 0; // tables are built on-device at run time (TableBuild)
      case DesignPoint::OpLutDram:
      case DesignPoint::OpLut:
        return opPackedLutBytes(shape);
      case DesignPoint::OpLc:
        return canonicalLutBytes(shape);
      case DesignPoint::OpLcRc:
      case DesignPoint::LoCaLut:
        return localutBytes(shape);
    }
    LOCALUT_PANIC("invalid design point");
}

void
ResidencyCharge::apply(TimingReport& timing, EnergyReport& energy,
                       KernelCost* cost) const
{
    if (!hit && (bytes > 0 || seconds > 0)) {
        timing.linkSeconds += seconds;
        timing.total += seconds;
        timing.seconds.add(phaseName(Phase::LutBroadcast), seconds);
        energy.total += joules;
        energy.joules.add(phaseName(Phase::LutBroadcast), joules);
        if (cost != nullptr) {
            cost->addLinkBytes(Phase::LutBroadcast, bytes);
        }
    }
    if (kvSpillBytes > 0 || kvSpillSeconds > 0) {
        timing.linkSeconds += kvSpillSeconds;
        timing.total += kvSpillSeconds;
        timing.seconds.add(phaseName(Phase::LinkOut), kvSpillSeconds);
        energy.total += kvSpillJoules;
        energy.joules.add(phaseName(Phase::LinkOut), kvSpillJoules);
        if (cost != nullptr) {
            cost->addLinkBytes(Phase::LinkOut, kvSpillBytes);
        }
    }
}

void
KvCharge::apply(TimingReport& timing, EnergyReport& energy) const
{
    if (hit() || shed) {
        return;
    }
    if (appendBytes > 0 || appendSeconds > 0) {
        timing.linkSeconds += appendSeconds;
        timing.total += appendSeconds;
        timing.seconds.add(phaseName(Phase::LinkActIn), appendSeconds);
    }
    if (spillBytes > 0 || spillSeconds > 0) {
        timing.linkSeconds += spillSeconds;
        timing.total += spillSeconds;
        timing.seconds.add(phaseName(Phase::LinkOut), spillSeconds);
    }
    energy.total += joules;
    energy.joules.add(phaseName(Phase::LinkActIn), joules);
}

ResidencyManager::ResidencyManager(BackendPtr backend, unsigned numRanks,
                                   std::uint64_t budgetBytesPerUnit,
                                   ResidencyPolicy policy)
    : ResidencyManager(std::move(backend), Topology{1, numRanks},
                       budgetBytesPerUnit, policy,
                       /*interNodeCodec=*/false)
{}

ResidencyManager::ResidencyManager(BackendPtr backend,
                                   const Topology& topology,
                                   std::uint64_t budgetBytesPerUnit,
                                   ResidencyPolicy policy,
                                   bool interNodeCodec)
    : backend_(std::move(backend)), policy_(policy), topo_(topology),
      codec_(interNodeCodec)
{
    LOCALUT_REQUIRE(backend_ != nullptr,
                    "ResidencyManager needs a backend");
    LOCALUT_REQUIRE(topo_.nodes >= 1 && topo_.ranksPerNode >= 1,
                    "ResidencyManager needs at least one rank");
    profile_ = backend_->memoryProfile();
    budget_ = budgetBytesPerUnit != 0 ? budgetBytesPerUnit
                                      : profile_.lutBytesPerUnit;
    residentBytes_.assign(topo_.totalRanks(), 0);
    kvFootprint_.assign(topo_.totalRanks(), 0);
}

unsigned
ResidencyManager::numRanks() const
{
    return static_cast<unsigned>(residentBytes_.size());
}

ResidencyCharge
ResidencyManager::acquire(const GemmPlan& plan, const std::string& scope,
                          double instances, unsigned homeRank)
{
    const std::uint64_t perCopy = tableSetBytes(plan);
    if (policy_ == ResidencyPolicy::Disabled || perCopy == 0) {
        return {}; // nothing to place; nothing charged
    }
    homeRank %= numRanks();
    TableSetKey key = tableSetKeyFor(plan, scope, instances, homeRank);
    const std::uint64_t bytes = satMulU64(perCopy, key.instances);
    if (lutBytesSaturated(bytes)) {
        // The real byte count overflowed 64 bits: such a plan is not
        // physically executable, and charging the sentinel as a size
        // would report a nonsense multi-year broadcast.  Leave it
        // untracked (the capacity.h contract: saturated counts must
        // never enter budget arithmetic).
        return {};
    }
    // The measured codec ratio materializes tables under its own lock;
    // compute it before taking ours (it is memoized per shape).
    const double ratio = (codec_ && topo_.nodeOf(homeRank) != 0)
                             ? codecRatioFor(plan.design, plan.config,
                                             std::max(1u, plan.p))
                             : 1.0;
    std::lock_guard<std::mutex> lock(mutex_);
    SpillCost spill;
    return acquireLocked(std::move(key), {{homeRank, bytes}}, ratio,
                         spill);
}

ResidencyCharge
ResidencyManager::acquire(const ShardPlan& plan, const std::string& scope,
                          double instances, unsigned rankOffset)
{
    if (policy_ == ResidencyPolicy::Disabled || plan.shards.empty()) {
        return {};
    }
    TableSetKey key;
    key.scope = scope;
    key.m = plan.m;
    key.k = plan.k;
    key.n = plan.n;
    key.config = plan.config;
    key.design = plan.design;
    key.p = std::max(1u, plan.shards.front().plan.p);
    key.shard = plan.spec;
    const std::uint64_t inst = roundInstances(instances);
    key.instances = inst;
    // The offset relocates a node-local cut onto a pipeline stage's
    // ranks; it is part of the set identity (stage 0's tables and stage
    // 1's tables never alias even when the cut is identical).
    key.homeRank = rankOffset % numRanks();
    // Coalesce per rank: when the plan carries more shards than this
    // manager has ranks, the wrapped entries must be budget-checked as
    // one aggregate — per-entry checks would admit a rank over budget.
    std::vector<std::uint64_t> perRank(numRanks(), 0);
    double total = 0;
    for (const GemmShard& shard : plan.shards) {
        const std::uint64_t bytes =
            satMulU64(tableSetBytes(shard.plan), inst);
        if (lutBytesSaturated(bytes)) {
            return {}; // unrepresentably large: untracked (see above)
        }
        const unsigned rank = (shard.rank + rankOffset) % numRanks();
        perRank[rank] = satAddU64(perRank[rank], bytes);
        total += static_cast<double>(bytes);
    }
    if (total == 0) {
        return {}; // design without host-built tables
    }
    std::vector<std::pair<unsigned, std::uint64_t>> rankBytes;
    rankBytes.reserve(perRank.size());
    for (unsigned rank = 0; rank < perRank.size(); ++rank) {
        if (perRank[rank] > 0) {
            rankBytes.emplace_back(rank, perRank[rank]);
        }
    }
    // Ratio before the lock (see the GemmPlan overload).
    const double ratio =
        (codec_ && crossesNodes(rankBytes))
            ? codecRatioFor(plan.design, plan.config, key.p)
            : 1.0;
    std::lock_guard<std::mutex> lock(mutex_);
    SpillCost spill;
    return acquireLocked(std::move(key), std::move(rankBytes), ratio,
                         spill);
}

ResidencyCharge
ResidencyManager::acquireLocked(
    TableSetKey key,
    std::vector<std::pair<unsigned, std::uint64_t>> rankBytes,
    double codecRatio, SpillCost& spill)
{
    ++clock_;
    auto [it, inserted] = sets_.try_emplace(std::move(key));
    TableSet& set = it->second;
    if (inserted) {
        set.rankBytes = std::move(rankBytes);
        // Split the broadcast by tier: node-0 shares ride the intra-host
        // rank-parallel broadcast link, remote nodes' shares cross the
        // inter-node (CXL) tier — compressed when the codec is on, plus
        // its encode time.  With one node this degenerates to the flat
        // formula bit-for-bit (interRaw == 0).
        double intraBytes = 0;
        double interRaw = 0;
        for (const auto& [rank, bytes] : set.rankBytes) {
            if (topo_.nodeOf(rank) == 0) {
                intraBytes += static_cast<double>(bytes);
            } else {
                interRaw += static_cast<double>(bytes);
            }
        }
        const double interBytes =
            interRaw > 0 ? interRaw / std::max(1.0, codecRatio) : 0.0;
        double seconds = 0;
        double joules = 0;
        double codecSeconds = 0;
        if (intraBytes > 0) {
            seconds += profile_.broadcastLatencyUs * 1e-6 +
                       intraBytes / (profile_.broadcastGBs * 1e9);
            joules += profile_.pjPerBroadcastByte * intraBytes * 1e-12;
        }
        if (interRaw > 0) {
            if (codec_) {
                codecSeconds = interRaw / (profile_.codecGBs * 1e9);
            }
            seconds += profile_.interNodeLatencyUs * 1e-6 +
                       interBytes / (profile_.interNodeGBs * 1e9) +
                       codecSeconds;
            joules += profile_.pjPerInterNodeByte * interBytes * 1e-12;
        }
        set.broadcastBytes = intraBytes + interBytes;
        set.intraBytes = intraBytes;
        set.interRawBytes = interRaw;
        set.interBytes = interBytes;
        set.codecSeconds = codecSeconds;
        set.broadcastSeconds = seconds;
        set.broadcastJoules = joules;
    }
    set.lastUse = clock_;
    ++set.uses;
    if (set.resident) {
        ++stats_.hits;
        return {};
    }

    // Miss: broadcast the tables, then try to admit them (an oversized
    // set streams through without ever becoming resident — every access
    // pays the transfer).
    ++stats_.misses;
    if (set.everResident) {
        ++stats_.rebroadcasts;
    }
    if (makeRoomLocked(set, spill)) {
        set.resident = true;
        set.everResident = true;
        set.admitOrder = ++admissions_;
        for (const auto& [rank, bytes] : set.rankBytes) {
            residentBytes_[rank] += bytes;
        }
        ++stats_.tableSets;
    }
    // Fault modeling on the inter-node share: a degraded fabric link
    // stretches the hop (latency + transfer, not the host-side encode),
    // and a corrupted payload — detected by the codec's CRC32 on the
    // receiving node — is re-sent over the same stretched hop, each
    // send decided deterministically from the set identity and its
    // per-set send count.  set.broadcastSeconds stays the clean
    // rebroadcast cost so eviction scores are fault-independent.
    double faultSeconds = 0;
    if (set.interRawBytes > 0) {
        const double interLinkSeconds =
            profile_.interNodeLatencyUs * 1e-6 +
            set.interBytes / (profile_.interNodeGBs * 1e9);
        double degrade = 1.0;
        if (injector_ != nullptr) {
            for (const auto& [rank, bytes] : set.rankBytes) {
                const unsigned node = topo_.nodeOf(rank);
                if (node != 0) {
                    degrade =
                        std::max(degrade, injector_->linkFactor(node));
                }
            }
        }
        faultSeconds += (degrade - 1.0) * interLinkSeconds;
        if (injector_ != nullptr && codec_) {
            const std::uint64_t payload =
                static_cast<std::uint64_t>(
                    TableSetKeyHash{}(it->first)) ^
                (set.sends << 1);
            // Each corrupted send charges a full re-send of the
            // degraded hop; cap the deterministic retry chain so a
            // rate of 1.0 cannot loop forever.
            for (unsigned attempt = 0; attempt < 8; ++attempt) {
                if (!injector_->broadcastCorrupted(payload, attempt)) {
                    break;
                }
                faultSeconds += degrade * interLinkSeconds;
                injector_->noteResend();
                ++stats_.broadcastResends;
            }
        }
        ++set.sends;
    }
    stats_.broadcastBytes += set.broadcastBytes;
    stats_.broadcastSeconds += set.broadcastSeconds + faultSeconds;
    stats_.broadcastIntraBytes += set.intraBytes;
    stats_.broadcastInterRawBytes += set.interRawBytes;
    stats_.broadcastInterBytes += set.interBytes;
    ResidencyCharge charge;
    charge.hit = false;
    charge.bytes = set.broadcastBytes;
    charge.seconds = set.broadcastSeconds + faultSeconds;
    charge.joules = set.broadcastJoules;
    charge.interNodeRawBytes = set.interRawBytes;
    charge.interNodeBytes = set.interBytes;
    charge.codecSeconds = set.codecSeconds;
    charge.kvSpillBytes = spill.bytes;
    charge.kvSpillSeconds = spill.seconds;
    charge.kvSpillJoules = spill.joules;
    return charge;
}

double
ResidencyManager::scoreLocked(const TableSet& set) const
{
    if (policy_ == ResidencyPolicy::Lru) {
        return static_cast<double>(set.lastUse);
    }
    // Cost-aware: what re-fetching this set would cost, weighted by how
    // often it has actually been used — the expected rebroadcast debt.
    return set.broadcastSeconds * static_cast<double>(set.uses);
}

bool
ResidencyManager::makeRoomLocked(const TableSet& incoming, SpillCost& spill)
{
    for (const auto& [rank, bytes] : incoming.rankBytes) {
        LOCALUT_REQUIRE(rank < residentBytes_.size(),
                        "table-set rank out of range");
        if (bytes > budget_) {
            return false; // can never fit, even on an empty rank
        }
    }
    for (const auto& [rank, bytes] : incoming.rankBytes) {
        if (!makeRoomOnRankLocked(rank, bytes, &incoming,
                                  kNoProtectedStream, spill)) {
            return false;
        }
    }
    return true;
}

bool
ResidencyManager::makeRoomOnRankLocked(unsigned rank, std::uint64_t needed,
                                       const TableSet* keepSet,
                                       std::uint64_t keepStream,
                                       SpillCost& spill)
{
    while (residentBytes_[rank] + kvFootprint_[rank] + needed > budget_) {
        // Victim: lowest score across *both* resource classes occupying
        // this rank — evicting a LUT set costs its future rebroadcast,
        // spilling a stream's KV costs its writeback + refill round
        // trip.  Ties break toward least-recent, then oldest admission,
        // so the choice is deterministic.
        TableSet* lutVictim = nullptr;
        for (auto& [key, candidate] : sets_) {
            if (!candidate.resident || &candidate == keepSet) {
                continue;
            }
            const bool onRank = std::any_of(
                candidate.rankBytes.begin(), candidate.rankBytes.end(),
                [rank](const auto& rb) { return rb.first == rank; });
            if (!onRank) {
                continue;
            }
            if (lutVictim == nullptr ||
                std::make_tuple(scoreLocked(candidate), candidate.lastUse,
                                candidate.admitOrder) <
                    std::make_tuple(scoreLocked(*lutVictim),
                                    lutVictim->lastUse,
                                    lutVictim->admitOrder)) {
                lutVictim = &candidate;
            }
        }
        KvEntry* kvVictim = nullptr;
        for (auto& [stream, candidate] : kvStreams_) {
            if (!candidate.resident || candidate.rank != rank ||
                stream == keepStream) {
                continue;
            }
            if (kvVictim == nullptr ||
                std::make_tuple(scoreKvLocked(candidate), candidate.lastUse,
                                candidate.admitOrder) <
                    std::make_tuple(scoreKvLocked(*kvVictim),
                                    kvVictim->lastUse,
                                    kvVictim->admitOrder)) {
                kvVictim = &candidate;
            }
        }
        if (lutVictim != nullptr && kvVictim != nullptr) {
            const bool lutFirst =
                std::make_tuple(scoreLocked(*lutVictim), lutVictim->lastUse,
                                lutVictim->admitOrder) <=
                std::make_tuple(scoreKvLocked(*kvVictim), kvVictim->lastUse,
                                kvVictim->admitOrder);
            if (lutFirst) {
                evictLocked(*lutVictim);
            } else {
                spillLocked(*kvVictim, spill);
            }
        } else if (lutVictim != nullptr) {
            evictLocked(*lutVictim);
        } else if (kvVictim != nullptr) {
            spillLocked(*kvVictim, spill);
        } else {
            return false; // nothing left to evict on this rank
        }
    }
    return true;
}

void
ResidencyManager::evictLocked(TableSet& victim)
{
    LOCALUT_ASSERT(victim.resident, "evicting a non-resident table set");
    for (const auto& [rank, bytes] : victim.rankBytes) {
        LOCALUT_ASSERT(residentBytes_[rank] >= bytes,
                       "resident-byte ledger underflow");
        residentBytes_[rank] -= bytes;
    }
    victim.resident = false;
    ++stats_.evictions;
    LOCALUT_ASSERT(stats_.tableSets > 0, "eviction with no resident sets");
    --stats_.tableSets;
}

void
ResidencyManager::spillLocked(KvEntry& victim, SpillCost& spill)
{
    LOCALUT_ASSERT(victim.resident, "spilling a non-resident KV stream");
    const std::uint64_t raw = victim.rawBytes();
    const std::uint64_t footprint = kvFootprint(raw);
    LOCALUT_ASSERT(kvFootprint_[victim.rank] >= footprint,
                   "KV footprint ledger underflow");
    kvFootprint_[victim.rank] -= footprint;
    victim.resident = false;
    ++stats_.kvSpills;
    LOCALUT_ASSERT(stats_.kvStreams > 0, "spill with no resident streams");
    --stats_.kvStreams;
    LOCALUT_ASSERT(stats_.kvResidentBytes >= raw,
                   "KV resident-byte counter underflow");
    stats_.kvResidentBytes -= raw;
    const double seconds = kvTransferSeconds(static_cast<double>(raw));
    const double joules =
        profile_.pjPerBroadcastByte * static_cast<double>(raw) * 1e-12;
    spill.bytes += static_cast<double>(raw);
    spill.seconds += seconds;
    spill.joules += joules;
    stats_.kvMovedBytes += static_cast<double>(raw);
    stats_.kvMovedSeconds += seconds;
}

double
ResidencyManager::scoreKvLocked(const KvEntry& entry) const
{
    if (policy_ == ResidencyPolicy::Lru) {
        return static_cast<double>(entry.lastUse);
    }
    // Cost-aware: spilling costs the PIM -> host writeback now plus the
    // host -> PIM refill the stream's next decode step must pay — a
    // round trip of the whole context.
    return 2.0 * kvTransferSeconds(static_cast<double>(entry.rawBytes()));
}

std::uint64_t
ResidencyManager::kvFootprint(std::uint64_t rawBytes) const
{
    // KV state is bank-interleaved across a rank's units (unlike LUT
    // tables, which every unit replicates), so the per-unit footprint
    // divides by the unit count.
    const std::uint64_t units = std::max(1u, profile_.unitsPerRank);
    return (rawBytes + units - 1) / units;
}

double
ResidencyManager::kvTransferSeconds(double rawBytes) const
{
    if (rawBytes <= 0) {
        return 0.0;
    }
    return profile_.broadcastLatencyUs * 1e-6 +
           rawBytes / (profile_.broadcastGBs * 1e9);
}

KvCharge
ResidencyManager::acquireKv(std::uint64_t stream, unsigned rank,
                            unsigned layers,
                            std::uint64_t bytesPerTokenPerLayer,
                            std::uint64_t contextTokens)
{
    if (policy_ == ResidencyPolicy::Disabled) {
        return {}; // nothing tracked; nothing charged
    }
    LOCALUT_REQUIRE(stream != kNoProtectedStream, "reserved stream id");
    LOCALUT_REQUIRE(layers >= 1 && bytesPerTokenPerLayer >= 1 &&
                        contextTokens >= 1,
                    "degenerate KV shape");
    rank %= numRanks();
    std::lock_guard<std::mutex> lock(mutex_);
    ++clock_;
    auto [it, inserted] = kvStreams_.try_emplace(stream);
    KvEntry& entry = it->second;
    if (inserted) {
        entry.rank = rank;
        entry.layers = layers;
        entry.bytesPerTokenPerLayer = bytesPerTokenPerLayer;
    } else {
        if (entry.displaced) {
            // The stream's home rank died.  invalidateRank() already
            // dropped its residency, so adopting the caller's rank here
            // charges the full-context refill on the survivor — the one
            // sanctioned way a stream changes rank mid-flight.
            entry.rank = rank;
            entry.displaced = false;
        }
        LOCALUT_REQUIRE(entry.rank == rank && entry.layers == layers &&
                            entry.bytesPerTokenPerLayer ==
                                bytesPerTokenPerLayer,
                        "KV stream changed shape or rank mid-flight");
        LOCALUT_REQUIRE(contextTokens >= entry.tokens,
                        "KV context must grow monotonically");
    }
    entry.lastUse = clock_;

    const std::uint64_t targetRaw =
        satMulU64(satMulU64(layers, bytesPerTokenPerLayer), contextTokens);
    const std::uint64_t targetFootprint = kvFootprint(targetRaw);
    if (lutBytesSaturated(targetRaw) || targetFootprint > budget_) {
        // This stream's KV alone can never fit the rank, even with every
        // other resident evicted: shed it (release all state).
        if (entry.resident) {
            const std::uint64_t raw = entry.rawBytes();
            kvFootprint_[rank] -= kvFootprint(raw);
            --stats_.kvStreams;
            stats_.kvResidentBytes -= raw;
        }
        kvStreams_.erase(it);
        ++stats_.kvSheds;
        KvCharge charge;
        charge.shed = true;
        return charge;
    }

    const std::uint64_t oldRaw = entry.rawBytes();
    const bool wasResident = entry.resident;
    // Bytes that must move host -> PIM: the appended tokens when the
    // context is resident, the whole context on first touch or refill.
    const std::uint64_t moveRaw = wasResident ? targetRaw - oldRaw
                                              : targetRaw;
    if (wasResident && moveRaw == 0) {
        KvCharge charge; // resident, unchanged: a free hit
        return charge;
    }

    // Take the stream's old footprint off the ledger while making room
    // for the new one, so growth is charged on the delta, not double-
    // counted; the stream itself is protected from victim selection.
    if (wasResident) {
        kvFootprint_[rank] -= kvFootprint(oldRaw);
    }
    SpillCost spill;
    const bool admitted = makeRoomOnRankLocked(
        rank, targetFootprint, /*keepSet=*/nullptr, stream, spill);
    LOCALUT_ASSERT(admitted,
                   "KV admission failed despite fitting the budget");
    kvFootprint_[rank] += targetFootprint;
    if (!wasResident) {
        entry.resident = true;
        if (entry.admitOrder == 0) {
            entry.admitOrder = ++admissions_;
        }
        ++stats_.kvStreams;
        if (oldRaw > 0) {
            ++stats_.kvRefills;
        }
    }
    stats_.kvResidentBytes += targetRaw - (wasResident ? oldRaw : 0);
    entry.tokens = contextTokens;

    KvCharge charge;
    charge.refill = !wasResident && oldRaw > 0;
    charge.appendBytes = static_cast<double>(moveRaw);
    charge.appendSeconds = kvTransferSeconds(charge.appendBytes);
    charge.spillBytes = spill.bytes;
    charge.spillSeconds = spill.seconds;
    charge.joules =
        profile_.pjPerBroadcastByte * charge.appendBytes * 1e-12 +
        spill.joules;
    stats_.kvMovedBytes += charge.appendBytes;
    stats_.kvMovedSeconds += charge.appendSeconds;
    return charge;
}

void
ResidencyManager::setFaultInjector(FaultInjector* injector)
{
    std::lock_guard<std::mutex> lock(mutex_);
    LOCALUT_REQUIRE(injector == nullptr ||
                        injector->topology().totalRanks() ==
                            topo_.totalRanks(),
                    "fault injector topology does not match residency");
    injector_ = injector;
}

ResidencyManager::RankLoss
ResidencyManager::invalidateRank(unsigned rank)
{
    RankLoss loss;
    if (policy_ == ResidencyPolicy::Disabled) {
        return loss;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    LOCALUT_REQUIRE(rank < residentBytes_.size(), "rank out of range");
    // Every table set with bytes on the dead rank loses residency whole:
    // a partial set cannot serve a sharded GEMM, and the re-shard that
    // follows the death keys a different set anyway.  everResident is
    // kept so a later re-acquire counts as a rebroadcast.
    for (auto& [key, set] : sets_) {
        if (!set.resident) {
            continue;
        }
        const bool onRank = std::any_of(
            set.rankBytes.begin(), set.rankBytes.end(),
            [rank](const auto& rb) { return rb.first == rank; });
        if (!onRank) {
            continue;
        }
        for (const auto& [r, bytes] : set.rankBytes) {
            loss.lutBytesDropped += bytes;
        }
        evictLocked(set);
        ++loss.lutSetsDropped;
    }
    // KV streams homed on the rank lose their device-resident context
    // and become displaced: the next acquireKv() may re-home them to a
    // survivor at full-refill cost.
    for (auto& [stream, entry] : kvStreams_) {
        if (entry.rank != rank) {
            continue;
        }
        if (entry.resident) {
            const std::uint64_t raw = entry.rawBytes();
            LOCALUT_ASSERT(kvFootprint_[rank] >= kvFootprint(raw),
                           "KV footprint ledger underflow");
            kvFootprint_[rank] -= kvFootprint(raw);
            entry.resident = false;
            --stats_.kvStreams;
            stats_.kvResidentBytes -= raw;
        }
        if (!entry.displaced) {
            entry.displaced = true;
            ++stats_.kvDisplaced;
            loss.displacedStreams.push_back(stream);
        }
    }
    std::sort(loss.displacedStreams.begin(), loss.displacedStreams.end());
    ++stats_.rankInvalidations;
    return loss;
}

void
ResidencyManager::releaseKv(std::uint64_t stream)
{
    if (policy_ == ResidencyPolicy::Disabled) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = kvStreams_.find(stream);
    if (it == kvStreams_.end()) {
        return;
    }
    if (it->second.resident) {
        const std::uint64_t raw = it->second.rawBytes();
        kvFootprint_[it->second.rank] -= kvFootprint(raw);
        --stats_.kvStreams;
        stats_.kvResidentBytes -= raw;
    }
    kvStreams_.erase(it);
}

bool
ResidencyManager::kvResident(const KvCacheKey& key) const
{
    if (policy_ == ResidencyPolicy::Disabled) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = kvStreams_.find(key.stream);
    return it != kvStreams_.end() && it->second.resident &&
           key.layer < it->second.layers;
}

bool
ResidencyManager::isResident(const TableSetKey& key) const
{
    if (policy_ == ResidencyPolicy::Disabled) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sets_.find(key);
    return it != sets_.end() && it->second.resident;
}

double
ResidencyManager::broadcastSeconds(std::uint64_t bytes) const
{
    if (bytes == 0) {
        return 0.0;
    }
    return profile_.broadcastLatencyUs * 1e-6 +
           static_cast<double>(bytes) / (profile_.broadcastGBs * 1e9);
}

double
ResidencyManager::projectedBroadcastSeconds(const GemmPlan& plan,
                                            std::uint64_t bytes,
                                            unsigned homeRank) const
{
    if (bytes == 0) {
        return 0.0;
    }
    if (topo_.nodeOf(homeRank % numRanks()) == 0) {
        return broadcastSeconds(bytes);
    }
    // No lock needed: the topology, codec flag, and memory profile are
    // immutable after construction, and the measured ratio locks itself.
    const double raw = static_cast<double>(bytes);
    const double ratio = codecRatioFor(plan.design, plan.config,
                                       std::max(1u, plan.p));
    double seconds = profile_.interNodeLatencyUs * 1e-6 +
                     (raw / ratio) / (profile_.interNodeGBs * 1e9);
    if (injector_ != nullptr) {
        // A degraded fabric link stretches the hop; the scheduler sees
        // the stretched projection and steers cold starts elsewhere.
        seconds *=
            injector_->linkFactor(topo_.nodeOf(homeRank % numRanks()));
    }
    if (codec_) {
        seconds += raw / (profile_.codecGBs * 1e9);
    }
    return seconds;
}

std::vector<ResidencyManager::NodeResidency>
ResidencyManager::nodeResidency() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<NodeResidency> nodes(topo_.nodes);
    for (unsigned rank = 0; rank < residentBytes_.size(); ++rank) {
        NodeResidency& node = nodes[topo_.nodeOf(rank)];
        node.lutBytes += residentBytes_[rank];
        node.kvBytes += kvFootprint_[rank];
    }
    return nodes;
}

double
ResidencyManager::codecRatioFor(DesignPoint design,
                                const QuantConfig& config,
                                unsigned p) const
{
    if (!codec_) {
        return 1.0;
    }
    return std::max(1.0, measuredTableSetRatio(design, config, p));
}

bool
ResidencyManager::crossesNodes(
    const std::vector<std::pair<unsigned, std::uint64_t>>& rankBytes)
    const
{
    return std::any_of(rankBytes.begin(), rankBytes.end(),
                       [this](const auto& rb) {
                           return topo_.nodeOf(rb.first) != 0;
                       });
}

ResidencyStats
ResidencyManager::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::uint64_t
ResidencyManager::residentBytes(unsigned rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    LOCALUT_REQUIRE(rank < residentBytes_.size(), "rank out of range");
    return residentBytes_[rank] + kvFootprint_[rank];
}

std::uint64_t
ResidencyManager::lutBytes(unsigned rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    LOCALUT_REQUIRE(rank < residentBytes_.size(), "rank out of range");
    return residentBytes_[rank];
}

std::uint64_t
ResidencyManager::kvBytes(unsigned rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    LOCALUT_REQUIRE(rank < kvFootprint_.size(), "rank out of range");
    return kvFootprint_[rank];
}

void
ResidencyManager::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Keep the entries (usage and everResident history) so post-reset
    // misses on previously-broadcast sets still count as re-broadcasts;
    // only the residency itself is dropped.  KV streams lose residency
    // too (their contexts survive on the host: the next acquireKv pays
    // a refill).
    for (auto& [key, set] : sets_) {
        set.resident = false;
    }
    for (auto& [stream, entry] : kvStreams_) {
        entry.resident = false;
    }
    std::fill(residentBytes_.begin(), residentBytes_.end(), 0);
    std::fill(kvFootprint_.begin(), kvFootprint_.end(), 0);
    stats_.tableSets = 0;
    stats_.kvStreams = 0;
    stats_.kvResidentBytes = 0;
}

} // namespace localut
