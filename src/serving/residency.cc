#include "serving/residency.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/saturate.h"
#include "lut/capacity.h"

namespace localut {

const char*
residencyPolicyName(ResidencyPolicy policy)
{
    switch (policy) {
      case ResidencyPolicy::Disabled:  return "disabled";
      case ResidencyPolicy::CostAware: return "cost-aware";
      case ResidencyPolicy::Lru:       return "lru";
    }
    LOCALUT_PANIC("invalid residency policy");
}

namespace {

std::uint64_t
roundInstances(double instances)
{
    return static_cast<std::uint64_t>(
        std::llround(std::max(1.0, instances)));
}

} // namespace

std::size_t
TableSetKeyHash::operator()(const TableSetKey& key) const
{
    std::size_t seed = 0;
    hashCombine(seed, std::hash<std::string>{}(key.scope));
    hashCombine(seed, key.m);
    hashCombine(seed, key.k);
    hashCombine(seed, key.n);
    hashCombine(seed,
                static_cast<std::size_t>(key.config.weightCodec.kind()));
    hashCombine(seed, key.config.weightCodec.bits());
    hashCombine(seed, static_cast<std::size_t>(key.config.actCodec.kind()));
    hashCombine(seed, key.config.actCodec.bits());
    hashCombine(seed, static_cast<std::size_t>(key.design));
    hashCombine(seed, key.p);
    hashCombine(seed, key.shard.numRanks);
    hashCombine(seed, static_cast<std::size_t>(key.shard.strategy));
    hashCombine(seed, key.shard.align);
    hashCombine(seed, static_cast<std::size_t>(key.instances));
    hashCombine(seed, key.homeRank);
    return seed;
}

TableSetKey
tableSetKeyFor(const GemmPlan& plan, const std::string& scope,
               double instances, unsigned homeRank)
{
    TableSetKey key;
    key.scope = scope;
    key.m = plan.m;
    key.k = plan.k;
    key.n = plan.n;
    key.config = plan.config;
    key.design = plan.design;
    key.p = std::max(1u, plan.p);
    key.instances = roundInstances(instances);
    key.homeRank = homeRank;
    return key;
}

std::uint64_t
tableSetBytes(const GemmPlan& plan)
{
    const LutShape shape(plan.config, std::max(1u, plan.p));
    switch (plan.design) {
      case DesignPoint::NaivePim:
        return 0; // arithmetic MACs: no tables at all
      case DesignPoint::Ltc:
        return 0; // tables are built on-device at run time (TableBuild)
      case DesignPoint::OpLutDram:
      case DesignPoint::OpLut:
        return opPackedLutBytes(shape);
      case DesignPoint::OpLc:
        return canonicalLutBytes(shape);
      case DesignPoint::OpLcRc:
      case DesignPoint::LoCaLut:
        return localutBytes(shape);
    }
    LOCALUT_PANIC("invalid design point");
}

void
ResidencyCharge::apply(TimingReport& timing, EnergyReport& energy,
                       KernelCost* cost) const
{
    if (hit || (bytes <= 0 && seconds <= 0)) {
        return;
    }
    timing.linkSeconds += seconds;
    timing.total += seconds;
    timing.seconds.add(phaseName(Phase::LutBroadcast), seconds);
    energy.total += joules;
    energy.joules.add(phaseName(Phase::LutBroadcast), joules);
    if (cost != nullptr) {
        cost->addLinkBytes(Phase::LutBroadcast, bytes);
    }
}

ResidencyManager::ResidencyManager(BackendPtr backend, unsigned numRanks,
                                   std::uint64_t budgetBytesPerUnit,
                                   ResidencyPolicy policy)
    : backend_(std::move(backend)), policy_(policy)
{
    LOCALUT_REQUIRE(backend_ != nullptr,
                    "ResidencyManager needs a backend");
    LOCALUT_REQUIRE(numRanks >= 1,
                    "ResidencyManager needs at least one rank");
    profile_ = backend_->memoryProfile();
    budget_ = budgetBytesPerUnit != 0 ? budgetBytesPerUnit
                                      : profile_.lutBytesPerUnit;
    residentBytes_.assign(numRanks, 0);
}

unsigned
ResidencyManager::numRanks() const
{
    return static_cast<unsigned>(residentBytes_.size());
}

ResidencyCharge
ResidencyManager::acquire(const GemmPlan& plan, const std::string& scope,
                          double instances, unsigned homeRank)
{
    const std::uint64_t perCopy = tableSetBytes(plan);
    if (policy_ == ResidencyPolicy::Disabled || perCopy == 0) {
        return {}; // nothing to place; nothing charged
    }
    homeRank %= numRanks();
    TableSetKey key = tableSetKeyFor(plan, scope, instances, homeRank);
    const std::uint64_t bytes = satMulU64(perCopy, key.instances);
    if (lutBytesSaturated(bytes)) {
        // The real byte count overflowed 64 bits: such a plan is not
        // physically executable, and charging the sentinel as a size
        // would report a nonsense multi-year broadcast.  Leave it
        // untracked (the capacity.h contract: saturated counts must
        // never enter budget arithmetic).
        return {};
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return acquireLocked(std::move(key), {{homeRank, bytes}});
}

ResidencyCharge
ResidencyManager::acquire(const ShardPlan& plan, const std::string& scope,
                          double instances)
{
    if (policy_ == ResidencyPolicy::Disabled || plan.shards.empty()) {
        return {};
    }
    TableSetKey key;
    key.scope = scope;
    key.m = plan.m;
    key.k = plan.k;
    key.n = plan.n;
    key.config = plan.config;
    key.design = plan.design;
    key.p = std::max(1u, plan.shards.front().plan.p);
    key.shard = plan.spec;
    const std::uint64_t inst = roundInstances(instances);
    key.instances = inst;
    // Coalesce per rank: when the plan carries more shards than this
    // manager has ranks, the wrapped entries must be budget-checked as
    // one aggregate — per-entry checks would admit a rank over budget.
    std::vector<std::uint64_t> perRank(numRanks(), 0);
    double total = 0;
    for (const GemmShard& shard : plan.shards) {
        const std::uint64_t bytes =
            satMulU64(tableSetBytes(shard.plan), inst);
        if (lutBytesSaturated(bytes)) {
            return {}; // unrepresentably large: untracked (see above)
        }
        const unsigned rank = shard.rank % numRanks();
        perRank[rank] = satAddU64(perRank[rank], bytes);
        total += static_cast<double>(bytes);
    }
    if (total == 0) {
        return {}; // design without host-built tables
    }
    std::vector<std::pair<unsigned, std::uint64_t>> rankBytes;
    rankBytes.reserve(perRank.size());
    for (unsigned rank = 0; rank < perRank.size(); ++rank) {
        if (perRank[rank] > 0) {
            rankBytes.emplace_back(rank, perRank[rank]);
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return acquireLocked(std::move(key), std::move(rankBytes));
}

ResidencyCharge
ResidencyManager::acquireLocked(
    TableSetKey key,
    std::vector<std::pair<unsigned, std::uint64_t>> rankBytes)
{
    ++clock_;
    auto [it, inserted] = sets_.try_emplace(std::move(key));
    TableSet& set = it->second;
    if (inserted) {
        set.rankBytes = std::move(rankBytes);
        double totalBytes = 0;
        for (const auto& [rank, bytes] : set.rankBytes) {
            totalBytes += static_cast<double>(bytes);
        }
        set.broadcastBytes = totalBytes;
        set.broadcastSeconds =
            profile_.broadcastLatencyUs * 1e-6 +
            totalBytes / (profile_.broadcastGBs * 1e9);
        set.broadcastJoules =
            profile_.pjPerBroadcastByte * totalBytes * 1e-12;
    }
    set.lastUse = clock_;
    ++set.uses;
    if (set.resident) {
        ++stats_.hits;
        return {};
    }

    // Miss: broadcast the tables, then try to admit them (an oversized
    // set streams through without ever becoming resident — every access
    // pays the transfer).
    ++stats_.misses;
    if (set.everResident) {
        ++stats_.rebroadcasts;
    }
    if (makeRoomLocked(set)) {
        set.resident = true;
        set.everResident = true;
        set.admitOrder = ++admissions_;
        for (const auto& [rank, bytes] : set.rankBytes) {
            residentBytes_[rank] += bytes;
        }
        ++stats_.tableSets;
    }
    stats_.broadcastBytes += set.broadcastBytes;
    stats_.broadcastSeconds += set.broadcastSeconds;
    ResidencyCharge charge;
    charge.hit = false;
    charge.bytes = set.broadcastBytes;
    charge.seconds = set.broadcastSeconds;
    charge.joules = set.broadcastJoules;
    return charge;
}

double
ResidencyManager::scoreLocked(const TableSet& set) const
{
    if (policy_ == ResidencyPolicy::Lru) {
        return static_cast<double>(set.lastUse);
    }
    // Cost-aware: what re-fetching this set would cost, weighted by how
    // often it has actually been used — the expected rebroadcast debt.
    return set.broadcastSeconds * static_cast<double>(set.uses);
}

bool
ResidencyManager::makeRoomLocked(const TableSet& incoming)
{
    for (const auto& [rank, bytes] : incoming.rankBytes) {
        LOCALUT_REQUIRE(rank < residentBytes_.size(),
                        "table-set rank out of range");
        if (bytes > budget_) {
            return false; // can never fit, even on an empty rank
        }
    }
    for (const auto& [rank, bytes] : incoming.rankBytes) {
        while (residentBytes_[rank] + bytes > budget_) {
            // Victim: lowest score among resident sets occupying this
            // rank; ties break toward least-recent, then oldest
            // admission, so eviction is deterministic.
            TableSet* victim = nullptr;
            for (auto& [key, candidate] : sets_) {
                if (!candidate.resident || &candidate == &incoming) {
                    continue;
                }
                const bool onRank = std::any_of(
                    candidate.rankBytes.begin(), candidate.rankBytes.end(),
                    [rank](const auto& rb) { return rb.first == rank; });
                if (!onRank) {
                    continue;
                }
                if (victim == nullptr ||
                    std::make_tuple(scoreLocked(candidate),
                                    candidate.lastUse,
                                    candidate.admitOrder) <
                        std::make_tuple(scoreLocked(*victim),
                                        victim->lastUse,
                                        victim->admitOrder)) {
                    victim = &candidate;
                }
            }
            if (victim == nullptr) {
                return false; // nothing left to evict on this rank
            }
            evictLocked(*victim);
        }
    }
    return true;
}

void
ResidencyManager::evictLocked(TableSet& victim)
{
    LOCALUT_ASSERT(victim.resident, "evicting a non-resident table set");
    for (const auto& [rank, bytes] : victim.rankBytes) {
        LOCALUT_ASSERT(residentBytes_[rank] >= bytes,
                       "resident-byte ledger underflow");
        residentBytes_[rank] -= bytes;
    }
    victim.resident = false;
    ++stats_.evictions;
    LOCALUT_ASSERT(stats_.tableSets > 0, "eviction with no resident sets");
    --stats_.tableSets;
}

bool
ResidencyManager::isResident(const TableSetKey& key) const
{
    if (policy_ == ResidencyPolicy::Disabled) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sets_.find(key);
    return it != sets_.end() && it->second.resident;
}

double
ResidencyManager::broadcastSeconds(std::uint64_t bytes) const
{
    if (bytes == 0) {
        return 0.0;
    }
    return profile_.broadcastLatencyUs * 1e-6 +
           static_cast<double>(bytes) / (profile_.broadcastGBs * 1e9);
}

ResidencyStats
ResidencyManager::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::uint64_t
ResidencyManager::residentBytes(unsigned rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    LOCALUT_REQUIRE(rank < residentBytes_.size(), "rank out of range");
    return residentBytes_[rank];
}

void
ResidencyManager::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Keep the entries (usage and everResident history) so post-reset
    // misses on previously-broadcast sets still count as re-broadcasts;
    // only the residency itself is dropped.
    for (auto& [key, set] : sets_) {
        set.resident = false;
    }
    std::fill(residentBytes_.begin(), residentBytes_.end(), 0);
    stats_.tableSets = 0;
}

} // namespace localut
