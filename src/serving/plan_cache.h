#ifndef LOCALUT_SERVING_PLAN_CACHE_H_
#define LOCALUT_SERVING_PLAN_CACHE_H_

/**
 * @file
 * Memoization of GemmPlans.  Planning a LoCaLUT GEMM walks the packing /
 * placement / slice-window / partition-grid space with the full event
 * model, which costs far more than "executing" the plan on the system
 * model — and a transformer serving loop re-plans the same handful of
 * shapes on every decode step.  The PlanCache keys plans by everything
 * that determines them: (M, K, N), quantization config, design point,
 * planner overrides, the shard configuration, and the backend that
 * produced the plan.  Sharded plans (ShardPlan, serving/sharding.h) are
 * memoized alongside the per-shape GemmPlans — a sharded decode loop
 * re-cuts the same handful of shapes every step — and their per-shard
 * sub-plans flow through the same GemmPlan memo, so two shard configs
 * that produce the same slice shapes share the planning work.  Hit/miss
 * counters are exposed so serving code (and tests) can verify reuse.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "backend/backend.h"
#include "serving/sharding.h"

namespace localut {

/** Everything that determines a plan.  Equality-comparable and hashable. */
struct PlanKey {
    std::size_t m = 0, k = 0, n = 0;
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()};
    DesignPoint design = DesignPoint::LoCaLut;
    PlanOverrides overrides;
    ShardSpec shard;               ///< default (numRanks 1) = unsharded
    std::string backend;           ///< plans are device-specific...
    std::uint64_t fingerprint = 0; ///< ...including the device config

    bool operator==(const PlanKey&) const = default;

    static PlanKey of(const Backend& backend, const GemmProblem& problem,
                      DesignPoint design, const PlanOverrides& overrides,
                      const ShardSpec& shard = {});
};

/** Hash over every PlanKey field. */
struct PlanKeyHash {
    std::size_t operator()(const PlanKey& key) const;
};

/**
 * A thread-safe (shape, config, design, overrides, backend) -> GemmPlan
 * memo.  Safe to share across InferenceSession worker threads.
 */
class PlanCache
{
  public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;

        double
        hitRate() const
        {
            const std::uint64_t lookups = hits + misses;
            return lookups == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups);
        }
    };

    /**
     * Returns the cached plan for (@p backend, @p problem, @p design,
     * @p overrides), planning and inserting on a miss.
     */
    GemmPlan planFor(const Backend& backend, const GemmProblem& problem,
                     DesignPoint design,
                     const PlanOverrides& overrides = {});

    /**
     * Returns the cached ShardPlan for (@p backend, @p problem, @p design,
     * @p spec, @p overrides), cutting and planning on a miss.  The
     * per-shard sub-plans are resolved through this cache too (counted in
     * the same hit/miss stats).
     */
    ShardPlan shardPlanFor(const Backend& backend,
                           const GemmProblem& problem, DesignPoint design,
                           const ShardSpec& spec,
                           const PlanOverrides& overrides = {});

    Stats stats() const;

    std::size_t size() const;

    /** Drops all entries (counters are kept; see resetStats()). */
    void clear();

    /** Zeroes the hit/miss counters. */
    void resetStats();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<PlanKey, GemmPlan, PlanKeyHash> plans_;
    std::unordered_map<PlanKey, ShardPlan, PlanKeyHash> shardPlans_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace localut

#endif // LOCALUT_SERVING_PLAN_CACHE_H_
