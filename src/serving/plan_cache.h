#ifndef LOCALUT_SERVING_PLAN_CACHE_H_
#define LOCALUT_SERVING_PLAN_CACHE_H_

/**
 * @file
 * Memoization of GemmPlans.  Planning a LoCaLUT GEMM walks the packing /
 * placement / slice-window / partition-grid space with the full event
 * model, which costs far more than "executing" the plan on the system
 * model — and a transformer serving loop re-plans the same handful of
 * shapes on every decode step.  The PlanCache keys plans by everything
 * that determines them: (M, K, N), quantization config, design point,
 * planner overrides, the shard configuration, and the backend that
 * produced the plan.  Sharded plans (ShardPlan, serving/sharding.h) are
 * memoized alongside the per-shape GemmPlans — a sharded decode loop
 * re-cuts the same handful of shapes every step — and their per-shard
 * sub-plans flow through the same GemmPlan memo, so two shard configs
 * that produce the same slice shapes share the planning work.  Hit/miss
 * counters are exposed so serving code (and tests) can verify reuse.
 *
 * Prepared operands (PreparedGemm, kernels/exec_engine.h) are memoized
 * here too: preparedFor() keys them by the same plan key plus a
 * weight-content fingerprint, so a serving loop executing the same
 * layer weights request after request packs and tables them exactly
 * once — while two same-shaped problems with different weights can
 * never alias.  A bounded LRU keeps fuzz-style workloads (thousands of
 * distinct problems) from retaining packed weights forever.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "backend/backend.h"
#include "kernels/exec_engine.h"
#include "serving/sharding.h"

namespace localut {

/** Everything that determines a plan.  Equality-comparable and hashable. */
struct PlanKey {
    std::size_t m = 0, k = 0, n = 0; ///< GEMM shape
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()}; ///< quantization
    DesignPoint design = DesignPoint::LoCaLut; ///< design point
    PlanOverrides overrides;       ///< planner overrides in effect
    ShardSpec shard;               ///< default (numRanks 1) = unsharded
    std::string backend;           ///< plans are device-specific...
    std::uint64_t fingerprint = 0; ///< ...including the device config

    bool operator==(const PlanKey&) const = default; ///< field-wise

    /** Builds the key for (@p backend, @p problem, @p design, ...). */
    static PlanKey of(const Backend& backend, const GemmProblem& problem,
                      DesignPoint design, const PlanOverrides& overrides,
                      const ShardSpec& shard = {});
};

/** Hash over every PlanKey field. */
struct PlanKeyHash {
    /** Combines every key field into one hash. */
    std::size_t operator()(const PlanKey& key) const;
};

/**
 * A thread-safe (shape, config, design, overrides, backend) -> GemmPlan
 * memo.  Safe to share across InferenceSession worker threads.
 */
class PlanCache
{
  public:
    /**
     * Hit/miss accounting at two granularities.  `hits`/`misses` count
     * *logical* lookups — one per planFor() or shardPlanFor() call, i.e.
     * one per logical GEMM — while `shardHits`/`shardMisses` count the
     * per-shard sub-plan lookups a shard-plan cut resolves internally.
     * Keeping them separate stops one sharded GEMM from being
     * double-counted as N rank hits: a cold 4-rank cut whose slices
     * share a shape is exactly 1 logical miss + 1 shard miss + 3 shard
     * hits, never "3 hits".
     */
    struct Stats {
        std::uint64_t hits = 0;        ///< logical lookups served cached
        std::uint64_t misses = 0;      ///< logical lookups that planned
        std::uint64_t shardHits = 0;   ///< per-shard sub-plan hits
        std::uint64_t shardMisses = 0; ///< per-shard sub-plan misses
        std::uint64_t preparedHits = 0;   ///< preparedFor() served cached
        std::uint64_t preparedMisses = 0; ///< preparedFor() that built
        std::size_t entries = 0;          ///< cached plans + shard plans
        std::size_t preparedEntries = 0;  ///< cached prepared operands
        std::uint64_t preparedBytes = 0; ///< resident operand bytes

        /** Logical (per-GEMM) hit rate. */
        double
        hitRate() const
        {
            const std::uint64_t lookups = hits + misses;
            return lookups == 0
                       ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(lookups);
        }

        /** Per-shard sub-plan hit rate. */
        double
        shardHitRate() const
        {
            const std::uint64_t lookups = shardHits + shardMisses;
            return lookups == 0
                       ? 0.0
                       : static_cast<double>(shardHits) /
                             static_cast<double>(lookups);
        }
    };

    /**
     * Returns the cached plan for (@p backend, @p problem, @p design,
     * @p overrides), planning and inserting on a miss.
     */
    GemmPlan planFor(const Backend& backend, const GemmProblem& problem,
                     DesignPoint design,
                     const PlanOverrides& overrides = {});

    /**
     * Returns the cached ShardPlan for (@p backend, @p problem, @p design,
     * @p spec, @p overrides), cutting and planning on a miss.  Counts as
     * ONE logical lookup; the per-shard sub-plans a cold cut resolves go
     * through shardSubPlanFor() and count in the separate shard
     * counters.
     */
    ShardPlan shardPlanFor(const Backend& backend,
                           const GemmProblem& problem, DesignPoint design,
                           const ShardSpec& spec,
                           const PlanOverrides& overrides = {});

    /**
     * planFor() for the per-shard slice sub-plans of a shard-plan cut
     * (called by makeShardPlan()): shares the GemmPlan memo but counts
     * in Stats::shardHits/shardMisses so a sharded logical GEMM is not
     * double-counted as N rank lookups.
     */
    GemmPlan shardSubPlanFor(const Backend& backend,
                             const GemmProblem& problem, DesignPoint design,
                             const PlanOverrides& overrides = {});

    /**
     * Returns the cached PreparedGemm for (@p backend, @p problem,
     * @p plan, @p overrides) — keyed by the plan key plus
     * weightsFingerprint(problem.w) — building (and inserting, LRU
     * bounded) on a miss.  @p plan must be the plan the operand will
     * execute under (normally the one planFor() returned for the same
     * arguments); the returned operand satisfies
     * prepared->matches(problem, plan).
     */
    std::shared_ptr<const PreparedGemm>
    preparedFor(const Backend& backend, const GemmProblem& problem,
                const GemmPlan& plan, const PlanOverrides& overrides = {});

    /** Caps the prepared-operand LRU (entries; default 128). */
    void setMaxPreparedEntries(std::size_t maxEntries);

    /** A consistent copy of the hit/miss counters and entry counts. */
    Stats stats() const;

    /** Cached plans + shard plans currently held. */
    std::size_t size() const;

    /** Drops all entries (counters are kept; see resetStats()). */
    void clear();

    /** Zeroes the hit/miss counters. */
    void resetStats();

  private:
    GemmPlan planForCounted(const Backend& backend,
                            const GemmProblem& problem, DesignPoint design,
                            const PlanOverrides& overrides,
                            std::uint64_t& hits, std::uint64_t& misses);

    struct PreparedKey {
        PlanKey plan;
        std::uint64_t weights = 0;

        bool operator==(const PreparedKey&) const = default;
    };

    struct PreparedKeyHash {
        std::size_t operator()(const PreparedKey& key) const;
    };

    struct PreparedEntry {
        std::shared_ptr<const PreparedGemm> prepared;
        std::uint64_t lastUse = 0;
    };

    mutable std::mutex mutex_;
    std::unordered_map<PlanKey, GemmPlan, PlanKeyHash> plans_;
    std::unordered_map<PlanKey, ShardPlan, PlanKeyHash> shardPlans_;
    std::unordered_map<PreparedKey, PreparedEntry, PreparedKeyHash>
        prepared_;
    std::size_t maxPrepared_ = 128;
    std::uint64_t preparedClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t shardHits_ = 0;
    std::uint64_t shardMisses_ = 0;
    std::uint64_t preparedHits_ = 0;
    std::uint64_t preparedMisses_ = 0;
};

} // namespace localut

#endif // LOCALUT_SERVING_PLAN_CACHE_H_
