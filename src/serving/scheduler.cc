#include "serving/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/saturate.h"
#include "lut/capacity.h"

namespace localut {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

const char*
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Slo:  return "slo";
      case SchedulerPolicy::Fifo: return "fifo";
    }
    LOCALUT_PANIC("invalid scheduler policy");
}

ServingRequest
ServingRequest::gemm(GemmProblem problem, DesignPoint design,
                     DeadlineClass lane, double deadlineSeconds,
                     bool computeValues, const PlanOverrides& overrides)
{
    ServingRequest request;
    request.lane = lane;
    request.deadlineSeconds = deadlineSeconds;
    request.isWorkload = false;
    request.problem = std::move(problem);
    request.design = design;
    request.overrides = overrides;
    request.computeValues = computeValues;
    return request;
}

ServingRequest
ServingRequest::workloadRequest(InferenceSession::CompiledWorkload workload,
                                DeadlineClass lane, double deadlineSeconds)
{
    ServingRequest request;
    request.lane = lane;
    request.deadlineSeconds = deadlineSeconds;
    request.isWorkload = true;
    request.workload = std::move(workload);
    return request;
}

ServingRequest
ServingRequest::prefill(InferenceSession::CompiledWorkload workload,
                        double deadlineSeconds)
{
    return workloadRequest(std::move(workload), DeadlineClass::Prefill,
                           deadlineSeconds);
}

ServingRequest
ServingRequest::decodeStep(InferenceSession::CompiledWorkload workload,
                           double deadlineSeconds)
{
    return workloadRequest(std::move(workload), DeadlineClass::Decode,
                           deadlineSeconds);
}

RequestScheduler::RequestScheduler(InferenceSession& session,
                                   const SchedulerOptions& options,
                                   Telemetry* telemetry)
    : session_(session), options_(options),
      numRanks_(session.totalRanks()),
      injector_(session.options().faultInjector)
{
    LOCALUT_REQUIRE(options_.maxQueuedPerRank >= 1,
                    "the admission bound must admit at least one request");
    if (telemetry == nullptr) {
        ownedTelemetry_ = std::make_unique<Telemetry>();
        telemetry_ = ownedTelemetry_.get();
    } else {
        telemetry_ = telemetry;
    }
    freeAt_.assign(numRanks_, 0.0);
}

double
RequestScheduler::clockSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return clock_;
}

void
RequestScheduler::advanceTo(double seconds)
{
    // Scheduled faults (rank death, link degradation) fire on the same
    // virtual clock the arrivals drive, before any placement decision
    // at the new time.
    if (injector_ != nullptr) {
        injector_->advanceTo(seconds);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (seconds > clock_) {
        clock_ = seconds;
    }
    sequenceLocked(clock_);
}

void
RequestScheduler::publishFaults()
{
    if (injector_ == nullptr) {
        return;
    }
    const FaultStats stats = injector_->stats();
    FaultCounters counters;
    counters.transientFaults = stats.transientFaults;
    counters.retries = stats.retries;
    counters.corruptedBroadcasts = stats.corruptedBroadcasts;
    counters.resends = stats.resends;
    counters.quarantines = stats.quarantines;
    counters.failovers = stats.failovers;
    counters.shedFault = stats.shedFault;
    counters.linkDegrades = stats.linkDegrades;
    counters.ranksDead = stats.ranksDead;
    counters.ranksQuarantined = stats.ranksQuarantined;
    counters.backoffSeconds = stats.backoffSeconds;
    counters.capacityRatio = injector_->capacityRatio();
    telemetry_->recordFaults(counters);
}

std::size_t
RequestScheduler::queuedRequests() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

bool
RequestScheduler::outranksLocked(const Entry& a, const Entry& b) const
{
    if (options_.policy == SchedulerPolicy::Fifo) {
        return a.seq < b.seq; // pure arrival order
    }
    if (a.lane != b.lane) {
        return deadlineClassPriority(a.lane) < deadlineClassPriority(b.lane);
    }
    if (a.deadline != b.deadline) {
        return a.deadline < b.deadline; // EDF within the lane
    }
    return a.seq < b.seq;
}

double
RequestScheduler::readyLocked(const Entry& entry,
                              const std::vector<double>& freeAt) const
{
    double ready = entry.arrival;
    if (entry.rank == kAllRanks) {
        for (const double t : freeAt) {
            ready = std::max(ready, t);
        }
    } else {
        ready = std::max(ready, freeAt[entry.rank]);
    }
    return ready;
}

std::vector<std::pair<double, double>>
RequestScheduler::simulateLocked(const std::vector<const Entry*>& entries,
                                 std::vector<double>& freeAt,
                                 double limit) const
{
    std::vector<std::pair<double, double>> schedule(entries.size(),
                                                    {-1.0, -1.0});
    std::vector<bool> started(entries.size(), false);
    std::size_t remaining = entries.size();
    while (remaining > 0) {
        // The earliest time any not-yet-started entry could begin.
        double t = kInf;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (!started[i]) {
                t = std::min(t, readyLocked(*entries[i], freeAt));
            }
        }
        if (t > limit) {
            break; // decisions past the limit stay open
        }
        // Among the entries that can start at t, the priority winner
        // goes (non-preemptive, work-conserving).
        std::size_t winner = entries.size();
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (started[i] || readyLocked(*entries[i], freeAt) > t) {
                continue;
            }
            if (winner == entries.size() ||
                outranksLocked(*entries[i], *entries[winner])) {
                winner = i;
            }
        }
        LOCALUT_ASSERT(winner < entries.size(),
                       "no winner at the earliest start time");
        const Entry& entry = *entries[winner];
        const double completion = t + entry.service;
        schedule[winner] = {t, completion};
        if (entry.rank == kAllRanks) {
            std::fill(freeAt.begin(), freeAt.end(), completion);
        } else {
            freeAt[entry.rank] = completion;
        }
        started[winner] = true;
        --remaining;
    }
    return schedule;
}

void
RequestScheduler::recordStartLocked(const Entry& entry, double start,
                                    double completion)
{
    auto it = tickets_.find(entry.id);
    LOCALUT_ASSERT(it != tickets_.end(),
                   "sequenced an entry without a ticket");
    Ticket& ticket = it->second;
    RequestSample sample;
    sample.id = entry.id;
    sample.lane = entry.lane;
    sample.arrivalSeconds = entry.arrival;
    sample.startSeconds = start;
    sample.completionSeconds = completion;
    sample.serviceSeconds = entry.service;
    sample.deadlineSeconds = entry.deadline;
    sample.collectiveSeconds = entry.collectiveSeconds;
    sample.lutBroadcastSeconds = entry.broadcastSeconds;
    ticket.sample = sample;
    ticket.sequenced = true;
    telemetry_->recordCompletion(sample);
}

void
RequestScheduler::sequenceLocked(double limit)
{
    if (pending_.empty()) {
        return;
    }
    std::vector<const Entry*> entries;
    entries.reserve(pending_.size());
    for (const Entry& entry : pending_) {
        entries.push_back(&entry);
    }
    std::vector<double> freeAt = freeAt_;
    const auto schedule = simulateLocked(entries, freeAt, limit);
    std::vector<Entry> open;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (schedule[i].first >= 0) {
            recordStartLocked(pending_[i], schedule[i].first,
                              schedule[i].second);
        } else {
            open.push_back(pending_[i]);
        }
    }
    // simulateLocked advanced freeAt by exactly the started entries.
    freeAt_ = std::move(freeAt);
    pending_ = std::move(open);
}

void
RequestScheduler::projectColdStartLocked(
    const GemmPlan& plan, const std::string& scope, double instances,
    ServiceProjection& projection) const
{
    const ResidencyManager* residency = session_.residency();
    for (unsigned rank = 0; rank < numRanks_; ++rank) {
        TableSetKey key = tableSetKeyFor(plan, scope, instances, rank);
        const std::uint64_t bytes =
            satMulU64(tableSetBytes(plan), key.instances);
        if (bytes == 0 || lutBytesSaturated(bytes) ||
            plannedSets_.count(key) != 0 ||
            residency->isResident(key)) {
            continue; // warm (or untracked) on this rank
        }
        // Tier-aware: a rank on a remote node pays the inter-node hop
        // (codec-compressed when enabled) instead of the local
        // broadcast — node-locality-aware placement falls out of the
        // earliest-completion search pricing remote cold starts higher.
        projection.rankBroadcastSeconds[rank] +=
            residency->projectedBroadcastSeconds(plan, bytes, rank);
        projection.rankKeys[rank].push_back(std::move(key));
    }
}

RequestScheduler::ServiceProjection
RequestScheduler::projectServiceLocked(const ServingRequest& request)
{
    ServiceProjection projection;
    const bool trackCold =
        session_.residency() != nullptr && options_.coldStartAware;

    if (request.isWorkload) {
        const auto& workload = request.workload;
        const WorkloadCostProjection cost = session_.projectCost(workload);
        projection.steadySeconds = cost.totalSeconds();
        projection.collectiveSeconds = cost.collectiveSeconds;
        if (trackCold && !workload.sharded()) {
            const double steps =
                workload.spec.phase == WorkloadPhase::Decode
                    ? std::max(1u, workload.spec.steps)
                    : 1.0;
            projection.rankBroadcastSeconds.assign(numRanks_, 0.0);
            projection.rankKeys.assign(numRanks_, {});
            for (const auto& node : workload.nodes) {
                projectColdStartLocked(node.plan, node.gemm.role,
                                       node.gemm.count / steps,
                                       projection);
            }
        }
        return projection;
    }

    // GEMM request: the plan is PlanCache-memoized; timing-only
    // execution of it is the exact modeled service (values never change
    // the cost accounting), memoized per plan key so repeated shapes
    // skip the timing model on the admission path.
    const GemmPlan plan = session_.plan(request.problem, request.design,
                                        request.overrides);
    const PlanKey key = PlanKey::of(session_.backend(), request.problem,
                                    request.design, request.overrides);
    const auto memo = gemmServiceMemo_.find(key);
    if (memo != gemmServiceMemo_.end()) {
        projection.steadySeconds = memo->second;
    } else {
        projection.steadySeconds =
            session_.backend()
                .execute(request.problem, plan, /*computeValues=*/false)
                .timing.total;
        gemmServiceMemo_.emplace(key, projection.steadySeconds);
    }
    if (trackCold) {
        projection.rankBroadcastSeconds.assign(numRanks_, 0.0);
        projection.rankKeys.assign(numRanks_, {});
        projectColdStartLocked(plan, "", 1.0, projection);
    }
    return projection;
}

AdmissionDecision
RequestScheduler::submit(ServingRequest request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const double arrival = request.arrivalSeconds < 0
                               ? clock_
                               : std::max(clock_, request.arrivalSeconds);
    clock_ = std::max(clock_, arrival);
    if (injector_ != nullptr) {
        // Scheduled faults due at (or before) this arrival fire before
        // the placement decision sees the health mask.
        injector_->advanceTo(clock_);
    }
    sequenceLocked(clock_);

    AdmissionDecision decision;
    decision.id = nextId_++;
    decision.lane = request.lane;
    decision.arrivalSeconds = arrival;
    decision.deadlineSeconds = std::isinf(request.deadlineSeconds)
                                   ? kInf
                                   : arrival + request.deadlineSeconds;

    const bool gang = request.isWorkload && request.workload.sharded();
    if (gang) {
        const SessionOptions& sessionOptions = session_.options();
        LOCALUT_REQUIRE(request.workload.numRanks ==
                                sessionOptions.numRanks &&
                            request.workload.numNodes ==
                                sessionOptions.numNodes,
                        "sharded workload compiled for ",
                        request.workload.numNodes, "x",
                        request.workload.numRanks,
                        " (nodes x ranks) submitted to a scheduler over ",
                        sessionOptions.numNodes, "x",
                        sessionOptions.numRanks);
    }

    auto reject = [&](AdmissionOutcome outcome) {
        decision.outcome = outcome;
        telemetry_->recordAdmission(decision.lane, outcome);
        Ticket ticket;
        ticket.decision = decision;
        ticket.isWorkload = request.isWorkload;
        tickets_.emplace(decision.id, std::move(ticket));
        return decision;
    };

    // A non-positive budget (deadline already in the past) can never be
    // met: shed before doing any projection work.
    if (options_.policy == SchedulerPolicy::Slo &&
        request.deadlineSeconds <= 0) {
        return reject(AdmissionOutcome::ShedDeadline);
    }

    // Fault gate: with no live rank at all nothing can serve, and a
    // gang needs the session to re-shard around losses — impossible
    // when its failover policy is off.
    const bool faultAware = injector_ != nullptr && options_.faultAware;
    if (faultAware &&
        (injector_->aliveCount() == 0 ||
         (gang && injector_->aliveCount() < numRanks_ &&
          !session_.options().faultPolicy.failover))) {
        injector_->noteShedFault();
        publishFaults();
        return reject(AdmissionOutcome::ShedFault);
    }

    // Saturation: admitted-but-unstarted depth per candidate rank.
    std::vector<std::size_t> queued(numRanks_, 0);
    for (const Entry& entry : pending_) {
        if (entry.rank == kAllRanks) {
            for (std::size_t& q : queued) {
                ++q;
            }
        } else {
            ++queued[entry.rank];
        }
    }
    if (gang) {
        if (pending_.size() >= options_.maxQueuedPerRank) {
            return reject(AdmissionOutcome::RejectedSaturated);
        }
    } else if (std::all_of(queued.begin(), queued.end(),
                           [&](std::size_t q) {
                               return q >= options_.maxQueuedPerRank;
                           })) {
        return reject(AdmissionOutcome::RejectedSaturated);
    }

    const ServiceProjection projection = projectServiceLocked(request);

    // Project the candidate onto each unsaturated rank: simulate the
    // whole pending queue plus the candidate and keep the feasible
    // placement with the earliest completion.  Under Slo, feasible
    // means no admitted finite deadline — including the candidate's —
    // is pushed past its budget (the EDF schedulability check).
    Entry candidate;
    candidate.id = decision.id;
    candidate.lane = request.lane;
    candidate.arrival = arrival;
    candidate.deadline = decision.deadlineSeconds;
    candidate.seq = nextSeq_++;
    candidate.collectiveSeconds = projection.collectiveSeconds;

    std::vector<unsigned> candidates;
    if (gang) {
        candidates.push_back(kAllRanks);
    } else {
        for (unsigned rank = 0; rank < numRanks_; ++rank) {
            if (queued[rank] < options_.maxQueuedPerRank &&
                (!faultAware || injector_->schedulable(rank))) {
                candidates.push_back(rank);
            }
        }
        if (candidates.empty()) {
            // Unsaturated ranks exist (the check above passed) but the
            // health mask excluded every one of them.
            injector_->noteShedFault();
            publishFaults();
            return reject(AdmissionOutcome::ShedFault);
        }
    }

    const bool slo = options_.policy == SchedulerPolicy::Slo;
    bool found = false;
    Entry best;
    double bestStart = 0, bestCompletion = kInf;
    for (const unsigned rank : candidates) {
        Entry trial = candidate;
        trial.rank = rank;
        trial.broadcastSeconds =
            rank != kAllRanks && !projection.rankBroadcastSeconds.empty()
                ? projection.rankBroadcastSeconds[rank]
                : 0.0;
        trial.service = projection.steadySeconds + trial.broadcastSeconds;

        std::vector<const Entry*> entries;
        entries.reserve(pending_.size() + 1);
        for (const Entry& entry : pending_) {
            entries.push_back(&entry);
        }
        entries.push_back(&trial);
        std::vector<double> freeAt = freeAt_;
        const auto schedule = simulateLocked(entries, freeAt, kInf);
        bool feasible = true;
        if (slo) {
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (!std::isinf(entries[i]->deadline) &&
                    schedule[i].second > entries[i]->deadline) {
                    feasible = false;
                    break;
                }
            }
        }
        if (!feasible) {
            continue;
        }
        const auto [start, completion] = schedule.back();
        if (completion < bestCompletion) {
            found = true;
            best = trial;
            bestStart = start;
            bestCompletion = completion;
        }
    }
    if (!found) {
        // Every unsaturated rank fails the schedulability check (Fifo
        // never fails it, so this branch is Slo-only).
        return reject(AdmissionOutcome::ShedDeadline);
    }

    decision.outcome = AdmissionOutcome::Admitted;
    decision.rank = best.rank;
    decision.projectedServiceSeconds = best.service;
    decision.projectedStartSeconds = bestStart;
    decision.projectedCompletionSeconds = bestCompletion;
    telemetry_->recordAdmission(decision.lane,
                                AdmissionOutcome::Admitted);
    const Topology topo = session_.topology();
    if (best.rank == kAllRanks) {
        // A gang occupies every rank: count it once per node.
        for (unsigned node = 0; node < topo.nodes; ++node) {
            telemetry_->recordPlacement(node);
        }
    } else {
        telemetry_->recordPlacement(topo.nodeOf(best.rank));
    }

    // Real execution: pin the request to its placement rank (gangs
    // shard across every rank, exactly as an unpinned submit would).
    SubmitOptions submitOptions;
    submitOptions.rank =
        best.rank == kAllRanks ? -1 : static_cast<int>(best.rank);
    Ticket ticket;
    ticket.decision = decision;
    ticket.isWorkload = request.isWorkload;

    // Commit the placement's table sets so later projections (and
    // placements) see this rank as warm while the request is in
    // flight; wait() releases them once the real execution has
    // acquired the sets and isResident() is authoritative.
    if (best.rank != kAllRanks && !projection.rankKeys.empty()) {
        for (const TableSetKey& key : projection.rankKeys[best.rank]) {
            if (plannedSets_.insert(key).second) {
                ticket.plannedKeys.push_back(key);
            }
        }
    }
    ticket.sessionId =
        request.isWorkload
            ? session_.submit(std::move(request.workload), submitOptions)
            : session_.submit(std::move(request.problem), request.design,
                              request.computeValues, request.overrides,
                              submitOptions);
    tickets_.emplace(decision.id, std::move(ticket));
    pending_.push_back(best);
    sequenceLocked(clock_);
    publishFaults();
    return decision;
}

ServingResult
RequestScheduler::wait(std::uint64_t id)
{
    ServingResult result;
    bool isWorkload = false;
    InferenceSession::RequestId sessionId = 0;
    std::vector<TableSetKey> plannedKeys;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = tickets_.find(id);
        LOCALUT_REQUIRE(it != tickets_.end(),
                        "unknown (or already waited-on) ticket ", id);
        if (!it->second.decision.admitted()) {
            result.decision = it->second.decision;
            tickets_.erase(it);
            return result;
        }
        if (!it->second.sequenced) {
            // Finalize the virtual schedule: the caller is waiting, so
            // no earlier arrival can still preempt these decisions.
            sequenceLocked(kInf);
            it = tickets_.find(id);
            LOCALUT_ASSERT(it != tickets_.end() && it->second.sequenced,
                           "waited ticket did not sequence");
        }
        result.decision = it->second.decision;
        result.sample = it->second.sample;
        isWorkload = it->second.isWorkload;
        sessionId = it->second.sessionId;
        plannedKeys = std::move(it->second.plannedKeys);
        tickets_.erase(it);
    }
    if (!plannedKeys.empty()) {
        // Hand authority over these sets back to the residency manager
        // before blocking on execution (exception-safe: a failed
        // execution must not leave stale "warm" markers).  Until the
        // execution actually acquires them, projections err cold — the
        // conservative direction for admission.
        std::lock_guard<std::mutex> lock(mutex_);
        for (const TableSetKey& key : plannedKeys) {
            plannedSets_.erase(key);
        }
    }
    try {
        if (isWorkload) {
            result.report = session_.waitReport(sessionId);
        } else {
            result.gemm = session_.wait(sessionId);
        }
    } catch (const FaultShedError&) {
        // Admitted, then shed by faults during execution (dead home
        // rank with failover off, retries exhausted, ...): the ticket
        // resolves with a terminal ShedFault verdict instead of
        // rethrowing, mirroring admission-time sheds.
        result.decision.outcome = AdmissionOutcome::ShedFault;
        telemetry_->recordPostAdmitFaultShed(result.sample);
    }
    // The execution just updated residency: refresh the node-labeled
    // gauges and per-tier broadcast counters the Prometheus dump
    // exposes (localut_node_*, localut_broadcast_bytes_total).
    if (const ResidencyManager* residency = session_.residency()) {
        const ResidencyStats stats = residency->stats();
        BroadcastTierBytes tiers;
        tiers.intraBytes = stats.broadcastIntraBytes;
        tiers.interRawBytes = stats.broadcastInterRawBytes;
        tiers.interBytes = stats.broadcastInterBytes;
        telemetry_->recordBroadcastTiers(tiers);
        std::vector<NodeResidencyGauge> nodes;
        for (const auto& node : residency->nodeResidency()) {
            nodes.push_back({node.lutBytes, node.kvBytes});
        }
        telemetry_->recordNodeResidency(std::move(nodes));
    }
    publishFaults();
    return result;
}

void
RequestScheduler::drain()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sequenceLocked(kInf);
    }
    session_.drain();
}

} // namespace localut
