#include "serving/session.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/logging.h"

namespace localut {

double
InferenceSession::CompiledWorkload::predictedGemmSeconds() const
{
    double seconds = 0;
    for (const PlanNode& node : nodes) {
        seconds += node.plan.predictedSeconds * node.gemm.count;
    }
    return seconds;
}

/** One queued unit of work (a GEMM or a compiled workload). */
struct InferenceSession::Request {
    RequestId id = 0;
    bool isWorkload = false;

    // GEMM request inputs / output.
    GemmProblem problem;
    DesignPoint design = DesignPoint::LoCaLut;
    PlanOverrides overrides;
    bool computeValues = false;
    GemmResult result;

    // Workload request input / output.
    CompiledWorkload workload;
    InferenceReport report;

    bool done = false;
    bool claimed = false; ///< a waiter owns this request's result
    std::exception_ptr error;
};

InferenceSession::InferenceSession(BackendPtr backend,
                                   const SessionOptions& options)
    : backend_(std::move(backend)), options_(options)
{
    LOCALUT_REQUIRE(backend_ != nullptr, "InferenceSession needs a backend");
    unsigned workers = options_.workers;
    if (workers == 0) {
        workers = std::max(1u, std::min(8u,
                                        std::thread::hardware_concurrency()));
    }
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

InferenceSession::InferenceSession(const std::string& backendName,
                                   const SessionOptions& options)
    : InferenceSession(makeBackend(backendName), options)
{}

InferenceSession::~InferenceSession()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

unsigned
InferenceSession::workerCount() const
{
    return static_cast<unsigned>(workers_.size());
}

GemmPlan
InferenceSession::plan(const GemmProblem& problem, DesignPoint design,
                       const PlanOverrides& overrides)
{
    return cache_.planFor(*backend_, problem, design, overrides);
}

InferenceSession::RequestId
InferenceSession::enqueue(std::unique_ptr<Request> request)
{
    Request* raw = request.get();
    RequestId id;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        LOCALUT_REQUIRE(!stopping_, "session is shutting down");
        id = nextId_++;
        raw->id = id;
        requests_.emplace(id, std::move(request));
        queue_.push_back(raw);
    }
    queueCv_.notify_one();
    return id;
}

InferenceSession::RequestId
InferenceSession::submit(GemmProblem problem, DesignPoint design,
                         const PlanOverrides& overrides)
{
    return submit(std::move(problem), design, options_.computeValues,
                  overrides);
}

InferenceSession::RequestId
InferenceSession::submit(GemmProblem problem, DesignPoint design,
                         bool computeValues, const PlanOverrides& overrides)
{
    auto request = std::make_unique<Request>();
    request->isWorkload = false;
    request->problem = std::move(problem);
    request->design = design;
    request->overrides = overrides;
    request->computeValues = computeValues;
    return enqueue(std::move(request));
}

InferenceSession::RequestId
InferenceSession::submit(CompiledWorkload workload)
{
    auto request = std::make_unique<Request>();
    request->isWorkload = true;
    request->workload = std::move(workload);
    return enqueue(std::move(request));
}

InferenceSession::CompiledWorkload
InferenceSession::compile(const WorkloadSpec& spec, const QuantConfig& quant,
                          DesignPoint design, const PlanOverrides& overrides)
{
    CompiledWorkload workload;
    workload.spec = spec;
    workload.quant = quant;
    workload.design = design;
    workload.overrides = overrides;
    workload.backendName = backend_->name();
    workload.backendFingerprint = backend_->configFingerprint();
    for (const WorkloadGemm& gemm : workloadGemms(spec)) {
        const GemmProblem problem =
            makeShapeOnlyProblem(gemm.m, gemm.k, gemm.n, quant);
        workload.nodes.push_back(
            {gemm, cache_.planFor(*backend_, problem, design, overrides)});
    }
    workload.hostOps = workloadHostOps(spec);
    return workload;
}

InferenceReport
InferenceSession::run(const CompiledWorkload& workload) const
{
    // Plans only make sense on the device model that produced them.
    LOCALUT_REQUIRE(workload.backendName == backend_->name() &&
                        workload.backendFingerprint ==
                            backend_->configFingerprint(),
                    "workload compiled for backend \"",
                    workload.backendName,
                    "\" submitted to a session on \"", backend_->name(),
                    "\"");
    return executeWorkload(*backend_, workload.nodes, workload.quant,
                           workload.hostOps);
}

void
InferenceSession::executeRequest(Request& request)
{
    if (request.isWorkload) {
        request.report = run(request.workload);
        return;
    }
    // Plans are memoized; identical shapes across requests hit the cache.
    const GemmPlan plan = cache_.planFor(*backend_, request.problem,
                                         request.design, request.overrides);
    request.result =
        backend_->execute(request.problem, plan, request.computeValues);
}

void
InferenceSession::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        queueCv_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_) {
                return;
            }
            continue;
        }
        Request* request = queue_.front();
        queue_.pop_front();
        lock.unlock();
        try {
            executeRequest(*request);
        } catch (...) {
            request->error = std::current_exception();
        }
        lock.lock();
        request->done = true;
        doneCv_.notify_all();
    }
}

std::unique_ptr<InferenceSession::Request>
InferenceSession::take(RequestId id, bool wantWorkload)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = requests_.find(id);
    LOCALUT_REQUIRE(it != requests_.end(),
                    "unknown (or already waited-on) request id ", id);
    Request* request = it->second.get();
    LOCALUT_REQUIRE(!request->claimed,
                    "request ", id, " already has a waiter");
    LOCALUT_REQUIRE(request->isWorkload == wantWorkload,
                    wantWorkload ? "waitReport() on a GEMM request"
                                 : "wait() on a workload request");
    // The claim keeps concurrent waiters out; the pointer stays valid
    // across the wait (node-based map), but `it` may not (rehash on
    // concurrent submits), so re-find before erasing.
    request->claimed = true;
    doneCv_.wait(lock, [request] { return request->done; });
    auto again = requests_.find(id);
    LOCALUT_ASSERT(again != requests_.end(), "claimed request vanished");
    std::unique_ptr<Request> owned = std::move(again->second);
    requests_.erase(again);
    return owned;
}

GemmResult
InferenceSession::wait(RequestId id)
{
    std::unique_ptr<Request> request = take(id, /*wantWorkload=*/false);
    if (request->error) {
        std::rethrow_exception(request->error);
    }
    return std::move(request->result);
}

InferenceReport
InferenceSession::waitReport(RequestId id)
{
    std::unique_ptr<Request> request = take(id, /*wantWorkload=*/true);
    if (request->error) {
        std::rethrow_exception(request->error);
    }
    return request->report;
}

void
InferenceSession::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] {
        if (!queue_.empty()) {
            return false;
        }
        return std::all_of(requests_.begin(), requests_.end(),
                           [](const auto& kv) { return kv.second->done; });
    });
}

std::size_t
InferenceSession::pendingRequests() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::size_t pending = 0;
    for (const auto& [id, request] : requests_) {
        if (!request->done) {
            ++pending;
        }
    }
    return pending;
}

} // namespace localut
