#include "serving/session.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "common/logging.h"
#include "dram/timing.h"

namespace localut {

namespace {

/** What the deterministic fault-resolution pass decided for one unit of
 * work: the rank it executes on, the failed attempts to re-pay, the
 * virtual backoff accumulated between them, and any failover hops. */
struct FaultOutcome {
    unsigned rank = 0;
    unsigned retries = 0;
    unsigned failovers = 0;
    double backoffSeconds = 0.0;
};

/**
 * Runs the deterministic transient-failure loop for one unit of work on
 * @p rank: each injected failure records a rank failure (feeding
 * quarantine) and, when a retry follows, charges one capped-exponential
 * backoff interval.  Returns the failed-attempt count —
 * policy.maxAttempts means the rank exhausted its attempts without a
 * success.
 */
unsigned
transientFailures(FaultInjector& inj, const FaultPolicy& policy,
                  std::uint64_t requestId, unsigned rank,
                  std::uint64_t salt, double& backoffSeconds)
{
    unsigned failed = 0;
    while (failed < policy.maxAttempts &&
           inj.executeFails(requestId, failed, rank, salt)) {
        inj.recordFailure(rank, policy.quarantineThreshold);
        ++failed;
        if (failed < policy.maxAttempts) {
            backoffSeconds += retryBackoffSeconds(
                policy.backoffBaseSeconds, policy.backoffCapSeconds,
                failed - 1);
        }
    }
    return failed;
}

/**
 * Deterministic placement + retry resolution for a whole (unsharded)
 * request starting on @p startRank: retry transients on the rank under
 * the policy; on exhaustion — or a dead/quarantined rank — fail over to
 * the next schedulable rank (wrapping, each visited at most once) when
 * the policy allows, else shed.  Throws FaultShedError when no rank can
 * serve the request.
 */
FaultOutcome
resolveWholeFaults(FaultInjector& inj, const FaultPolicy& policy,
                   std::uint64_t requestId, unsigned startRank)
{
    FaultOutcome out;
    out.rank = startRank;
    const unsigned total = inj.topology().totalRanks();
    // The salt bumps per failover hop so every rank visit draws from its
    // own deterministic attempt stream.
    std::uint64_t salt = 0;
    for (unsigned hops = 0; hops <= total; ++hops) {
        if (inj.schedulable(out.rank)) {
            const unsigned failed = transientFailures(
                inj, policy, requestId, out.rank, salt,
                out.backoffSeconds);
            out.retries += failed;
            if (failed < policy.maxAttempts) {
                return out; // an attempt went through on this rank
            }
        }
        if (!policy.failover) {
            inj.noteShedFault();
            throw FaultShedError(
                out.rank, "fault shed: rank " + std::to_string(out.rank) +
                              " cannot serve the request and failover "
                              "is disabled");
        }
        const unsigned next = inj.firstSchedulable((out.rank + 1) % total);
        if (next == FaultInjector::kNoRank || next == out.rank) {
            break; // no other live rank to hop to
        }
        out.rank = next;
        ++out.failovers;
        ++salt;
        inj.noteFailover();
    }
    inj.noteShedFault();
    throw FaultShedError(out.rank,
                         "fault shed: no schedulable rank could serve "
                         "the request");
}

/** Folds a fault outcome into @p timing: each failed attempt re-pays the
 * clean cost of the work, plus the accumulated virtual backoff. */
void
chargeFaultPenalty(TimingReport& timing, const FaultOutcome& fault,
                   FaultInjector& inj)
{
    if (fault.retries == 0 && fault.backoffSeconds <= 0) {
        return;
    }
    const double retrySeconds =
        static_cast<double>(fault.retries) * timing.total;
    timing.total += retrySeconds + fault.backoffSeconds;
    if (retrySeconds > 0) {
        timing.seconds.add("fault.retry", retrySeconds);
    }
    if (fault.backoffSeconds > 0) {
        timing.seconds.add("fault.backoff", fault.backoffSeconds);
    }
    inj.noteRetries(fault.retries);
    inj.noteBackoff(fault.backoffSeconds);
}

/**
 * The session whose tile batch this thread is currently draining (null
 * when not inside a tile).  A tile closure that re-enters
 * runTileBatch() on the same session must drain inline: re-submitting
 * from inside a tile would have this thread compete with (and wait on)
 * the batch it is itself a tile of.  Mirrors the TilePool nested-run
 * guard in common/parallel.cc.
 */
thread_local const InferenceSession* tlDrainingSession = nullptr;

struct SessionDrainScope {
    const InferenceSession* previous;

    explicit SessionDrainScope(const InferenceSession* session)
        : previous(tlDrainingSession)
    {
        tlDrainingSession = session;
    }
    ~SessionDrainScope() { tlDrainingSession = previous; }
};

} // namespace

const char*
nodePlacementName(NodePlacement placement)
{
    switch (placement) {
      case NodePlacement::TensorParallel:   return "tensor-parallel";
      case NodePlacement::PipelineParallel: return "pipeline-parallel";
    }
    LOCALUT_PANIC("invalid node placement");
}

double
InferenceSession::CompiledWorkload::predictedGemmSeconds() const
{
    double seconds = 0;
    for (const PlanNode& node : nodes) {
        seconds += node.plan.predictedSeconds * node.gemm.count;
    }
    for (const ShardedGemm& node : shardedNodes) {
        seconds += node.plan.predictedSeconds() * node.gemm.count;
    }
    return seconds;
}

/** One queued unit of work (a GEMM or a compiled workload). */
struct InferenceSession::Request {
    RequestId id = 0;
    bool isWorkload = false;

    // GEMM request inputs / output.
    GemmProblem problem;
    DesignPoint design = DesignPoint::LoCaLut;
    PlanOverrides overrides;
    bool computeValues = false;
    GemmResult result;

    // Sharded GEMM state (numRanks > 1): the plan stage fills these and
    // fans one shard task per rank; the last shard to finish reduces.
    ShardPlan shardPlan;
    std::vector<GemmResult> shardResults;
    unsigned remainingShards = 0; ///< guarded by the session mutex

    // Workload request input / output.
    CompiledWorkload workload;
    InferenceReport report;

    // Residency home rank: 0 unless the submission pinned a rank
    // (SubmitOptions::rank — the scheduler's placement decision).
    unsigned homeRank = 0;

    bool done = false;
    bool claimed = false; ///< a waiter owns this request's result
    std::exception_ptr error;
};

InferenceSession::InferenceSession(BackendPtr backend,
                                   const SessionOptions& options)
    : backend_(std::move(backend)), options_(options)
{
    LOCALUT_REQUIRE(backend_ != nullptr, "InferenceSession needs a backend");
    LOCALUT_REQUIRE(options_.numRanks >= 1,
                    "a session needs at least one rank");
    LOCALUT_REQUIRE(options_.numNodes >= 1,
                    "a session needs at least one node");
    const unsigned flatRanks = options_.numNodes * options_.numRanks;
    if (options_.residencyPolicy != ResidencyPolicy::Disabled) {
        residency_ = std::make_unique<ResidencyManager>(
            backend_, topology(), options_.mramBudgetBytes,
            options_.residencyPolicy, options_.interNodeCodec);
    }
    if (options_.faultInjector != nullptr) {
        LOCALUT_REQUIRE(
            options_.faultInjector->topology().totalRanks() == flatRanks,
            "fault injector tracks ",
            options_.faultInjector->topology().totalRanks(),
            " ranks but the session models ", flatRanks);
        LOCALUT_REQUIRE(options_.faultPolicy.maxAttempts >= 1,
                        "FaultPolicy::maxAttempts must be at least 1");
        if (residency_ != nullptr) {
            residency_->setFaultInjector(options_.faultInjector);
            // Rank death invalidates everything resident there: LUT
            // sets rebroadcast on next touch, KV streams become
            // displaced and re-home to a survivor at full-refill cost.
            ResidencyManager* residency = residency_.get();
            options_.faultInjector->onRankLoss(
                [residency](unsigned rank) {
                    residency->invalidateRank(rank);
                });
        }
    }
    rankQueues_.resize(flatRanks);
    unsigned workers = options_.workers;
    if (workers == 0) {
        const unsigned base = std::max(
            1u, std::min(8u, std::thread::hardware_concurrency()));
        // Enough workers that every rank's shard of a sharded GEMM can
        // be in flight at once.
        workers = std::max(base, std::min(flatRanks, 8u));
    }
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
}

InferenceSession::InferenceSession(const std::string& backendName,
                                   const SessionOptions& options)
    : InferenceSession(makeBackend(backendName), options)
{}

InferenceSession::~InferenceSession()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

unsigned
InferenceSession::workerCount() const
{
    return static_cast<unsigned>(workers_.size());
}

GemmPlan
InferenceSession::plan(const GemmProblem& problem, DesignPoint design,
                       const PlanOverrides& overrides)
{
    return cache_.planFor(*backend_, problem, design, overrides);
}

ShardPlan
InferenceSession::shardPlan(const GemmProblem& problem, DesignPoint design,
                            const PlanOverrides& overrides,
                            std::size_t align)
{
    const ShardSpec spec{options_.numRanks, options_.shardStrategy, align,
                         options_.numNodes};
    return cache_.shardPlanFor(*backend_, problem, design, spec, overrides);
}

bool
InferenceSession::anyQueuedLocked() const
{
    return std::any_of(rankQueues_.begin(), rankQueues_.end(),
                       [](const auto& queue) { return !queue.empty(); });
}

unsigned
InferenceSession::pickRankLocked()
{
    // Continuous batching: park the task on the least-loaded rank queue,
    // rotating the starting rank so equally-loaded ranks share work.
    const unsigned ranks = static_cast<unsigned>(rankQueues_.size());
    const unsigned start = nextRank_++ % ranks;
    unsigned best = start;
    for (unsigned i = 1; i < ranks; ++i) {
        const unsigned rank = (start + i) % ranks;
        if (rankQueues_[rank].size() < rankQueues_[best].size()) {
            best = rank;
        }
    }
    return best;
}

InferenceSession::Task
InferenceSession::popTaskLocked(unsigned preferredRank)
{
    const unsigned ranks = static_cast<unsigned>(rankQueues_.size());
    for (unsigned i = 0; i < ranks; ++i) {
        auto& queue = rankQueues_[(preferredRank + i) % ranks];
        if (!queue.empty()) {
            const Task task = queue.front();
            queue.pop_front();
            return task;
        }
    }
    LOCALUT_PANIC("popTaskLocked on empty queues");
}

InferenceSession::RequestId
InferenceSession::enqueue(std::unique_ptr<Request> request,
                          const SubmitOptions& submitOptions)
{
    Request* raw = request.get();
    const bool pinned = submitOptions.rank >= 0;
    if (pinned) {
        raw->homeRank = static_cast<unsigned>(submitOptions.rank) %
                        static_cast<unsigned>(rankQueues_.size());
    }
    RequestId id;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        LOCALUT_REQUIRE(!stopping_, "session is shutting down");
        id = nextId_++;
        raw->id = id;
        requests_.emplace(id, std::move(request));
        // A pinned request executes whole (unsharded) on its rank; an
        // unpinned GEMM on a multi-rank session shards across ranks.
        const bool shardedGemm = !pinned && !raw->isWorkload &&
                                 rankQueues_.size() > 1;
        const unsigned rank = pinned ? raw->homeRank : pickRankLocked();
        rankQueues_[rank].push_back(
            {raw, shardedGemm ? kPlanTask : kWholeTask, {}});
    }
    queueCv_.notify_one();
    return id;
}

InferenceSession::RequestId
InferenceSession::submit(GemmProblem problem, DesignPoint design,
                         const PlanOverrides& overrides)
{
    return submit(std::move(problem), design, options_.computeValues,
                  overrides);
}

InferenceSession::RequestId
InferenceSession::submit(GemmProblem problem, DesignPoint design,
                         bool computeValues, const PlanOverrides& overrides)
{
    return submit(std::move(problem), design, computeValues, overrides,
                  SubmitOptions{});
}

InferenceSession::RequestId
InferenceSession::submit(GemmProblem problem, DesignPoint design,
                         bool computeValues, const PlanOverrides& overrides,
                         const SubmitOptions& submitOptions)
{
    auto request = std::make_unique<Request>();
    request->isWorkload = false;
    request->problem = std::move(problem);
    request->design = design;
    request->overrides = overrides;
    request->computeValues = computeValues;
    return enqueue(std::move(request), submitOptions);
}

InferenceSession::RequestId
InferenceSession::submit(CompiledWorkload workload)
{
    return submit(std::move(workload), SubmitOptions{});
}

InferenceSession::RequestId
InferenceSession::submit(CompiledWorkload workload,
                         const SubmitOptions& submitOptions)
{
    LOCALUT_REQUIRE(submitOptions.rank < 0 || !workload.sharded(),
                    "a sharded workload spans every rank and cannot be "
                    "pinned to one (compileUnsharded() it instead)");
    auto request = std::make_unique<Request>();
    request->isWorkload = true;
    request->workload = std::move(workload);
    return enqueue(std::move(request), submitOptions);
}

InferenceSession::CompiledWorkload
InferenceSession::compile(const WorkloadSpec& spec, const QuantConfig& quant,
                          DesignPoint design, const PlanOverrides& overrides)
{
    return compileWith(spec, quant, design, overrides, options_.numRanks,
                       options_.numNodes);
}

InferenceSession::CompiledWorkload
InferenceSession::compileUnsharded(const WorkloadSpec& spec,
                                   const QuantConfig& quant,
                                   DesignPoint design,
                                   const PlanOverrides& overrides)
{
    return compileWith(spec, quant, design, overrides, /*numRanks=*/1,
                       /*numNodes=*/1);
}

InferenceSession::CompiledWorkload
InferenceSession::compileWith(const WorkloadSpec& spec,
                              const QuantConfig& quant, DesignPoint design,
                              const PlanOverrides& overrides,
                              unsigned numRanks, unsigned numNodes)
{
    CompiledWorkload workload;
    workload.spec = spec;
    workload.quant = quant;
    workload.design = design;
    workload.overrides = overrides;
    workload.numRanks = numRanks;
    workload.numNodes = numNodes;
    workload.nodePlacement = options_.nodePlacement;
    workload.backendName = backend_->name();
    workload.backendFingerprint = backend_->configFingerprint();
    const bool pipeline =
        numNodes > 1 &&
        options_.nodePlacement == NodePlacement::PipelineParallel;
    const std::vector<WorkloadGemm> gemms = workloadGemms(spec);
    for (const WorkloadGemm& gemm : gemms) {
        const GemmProblem problem =
            makeShapeOnlyProblem(gemm.m, gemm.k, gemm.n, quant);
        if (pipeline) {
            // Pipeline-parallel: whole layers are dealt across nodes, so
            // each node executes a *node-local* rank cut of its share of
            // the repeats.  Splitting the (double) repeat count keeps
            // the aggregate work identical to the single-node graph —
            // the functional path is untouched (shape-only nodes) and
            // costs scale by exact count arithmetic.
            const ShardSpec shard{numRanks, options_.shardStrategy,
                                  gemm.rowAlign, 1};
            const ShardPlan plan = cache_.shardPlanFor(
                *backend_, problem, design, shard, overrides);
            for (unsigned node = 0; node < numNodes; ++node) {
                WorkloadGemm stage = gemm;
                stage.count = gemm.count / numNodes;
                workload.shardedNodes.push_back({stage, plan, node});
            }
        } else if (numRanks * numNodes > 1) {
            // Tensor-parallel column cut across the whole grid, aligned
            // to the GEMM's row grouping — attention heads for QKV
            // (head-parallel), 1 elsewhere.
            const ShardSpec shard{numRanks, options_.shardStrategy,
                                  gemm.rowAlign, numNodes};
            workload.shardedNodes.push_back(
                {gemm, cache_.shardPlanFor(*backend_, problem, design,
                                           shard, overrides)});
        } else {
            workload.nodes.push_back(
                {gemm,
                 cache_.planFor(*backend_, problem, design, overrides)});
        }
    }
    workload.hostOps = workloadHostOps(spec);
    if (pipeline && !gemms.empty()) {
        // Inter-stage activation traffic: each pass hands the layer
        // activations (the first GEMM's k x n input tensor, at the
        // activation codec's width) across every stage boundary; a
        // decode request crosses them once per step.  Priced as one
        // inter-node hop per crossing so projections and reports agree.
        const WorkloadGemm& first = gemms.front();
        const double actBytes =
            static_cast<double>(first.k) * static_cast<double>(first.n) *
            (static_cast<double>(quant.actCodec.bits()) / 8.0);
        const double steps = spec.phase == WorkloadPhase::Decode
                                 ? static_cast<double>(
                                       std::max(1u, spec.steps))
                                 : 1.0;
        const double crossings =
            static_cast<double>(numNodes - 1) * steps;
        const CollectiveLinkProfile prof = backend_->collectiveProfile();
        const CollectiveCost hop = collectiveHopCost(
            prof.dram, prof.dramEnergy, {0, 0, 0, actBytes, actBytes},
            prof.interNode);
        workload.pipelineHopBytes = actBytes * crossings;
        workload.pipelineHopSeconds = hop.seconds * crossings;
        workload.pipelineHopJoules = hop.joules * crossings;
    }
    return workload;
}

WorkloadCostProjection
InferenceSession::projectCost(const CompiledWorkload& workload) const
{
    WorkloadCostProjection projection =
        workload.sharded()
            ? projectShardedWorkloadCost(*backend_,
                                         workload.shardedNodes,
                                         workload.quant,
                                         workload.hostOps)
            : projectWorkloadCost(*backend_, workload.nodes,
                                  workload.quant, workload.hostOps);
    // Pipeline-stage activation hops are steady-state per-request cost
    // too; fold them into the collective share so projection matches
    // what runAt() reports.
    projection.collectiveSeconds += workload.pipelineHopSeconds;
    return projection;
}

InferenceReport
InferenceSession::run(const CompiledWorkload& workload) const
{
    return runAt(workload, /*homeRank=*/0);
}

InferenceReport
InferenceSession::runAt(const CompiledWorkload& workload,
                        unsigned homeRank) const
{
    // Plans only make sense on the device model that produced them.
    LOCALUT_REQUIRE(workload.backendName == backend_->name() &&
                        workload.backendFingerprint ==
                            backend_->configFingerprint(),
                    "workload compiled for backend \"",
                    workload.backendName,
                    "\" submitted to a session on \"", backend_->name(),
                    "\"");
    // Unsharded workloads occupy one rank and are valid on any session
    // of this backend (the scheduler serves them data-parallel); a
    // sharded cut must match the session's topology exactly.
    LOCALUT_REQUIRE(!workload.sharded() ||
                        (workload.numRanks == options_.numRanks &&
                         workload.numNodes == options_.numNodes),
                    "workload compiled for ", workload.numNodes, "x",
                    workload.numRanks,
                    " (nodes x ranks) submitted to a session with ",
                    options_.numNodes, "x", options_.numRanks,
                    " (recompile on this session to re-cut the shards)");
    const ExecOptions nodeOptions = execOptions(/*computeValues=*/false);
    InferenceReport report =
        workload.sharded()
            ? executeShardedWorkload(*backend_, workload.shardedNodes,
                                     workload.quant, workload.hostOps,
                                     nodeOptions)
            : executeWorkload(*backend_, workload.nodes, workload.quant,
                              workload.hostOps, nodeOptions);
    if (workload.pipelineHopSeconds > 0 ||
        workload.pipelineHopJoules > 0) {
        // Pipeline-stage activation handoffs over the inter-node tier
        // (precomputed at compile; see compileWith).
        report.timing.linkSeconds += workload.pipelineHopSeconds;
        report.timing.total += workload.pipelineHopSeconds;
        report.timing.seconds.add("link.internode",
                                  workload.pipelineHopSeconds);
        report.energy.total += workload.pipelineHopJoules;
        report.energy.joules.add("link.internode",
                                 workload.pipelineHopJoules);
        report.collectiveSeconds += workload.pipelineHopSeconds;
        report.interNodeSeconds += workload.pipelineHopSeconds;
    }
    if (residency_ == nullptr) {
        return report;
    }
    // Thread every GEMM node through the residency manager: each
    // distinct (layer, shape, design) table set broadcasts host -> PIM
    // on first touch and is free while it stays MRAM-resident, so a
    // repeated decode request pays table transfer once per layer
    // instead of once per step.
    const double steps = workload.spec.phase == WorkloadPhase::Decode
                             ? std::max(1u, workload.spec.steps)
                             : 1.0;
    auto chargeNode = [&](const WorkloadGemm& gemm, const auto& plan,
                          unsigned rankOrOffset) {
        // count aggregates layers (and decode steps); the per-layer
        // table instances are count / steps.  Unsharded sets home on
        // the request's placement rank; sharded sets span their cut's
        // ranks, offset onto the owning pipeline stage's node (overload
        // resolution picks the GemmPlan or ShardPlan acquire).
        const ResidencyCharge charge = residency_->acquire(
            plan, gemm.role, gemm.count / steps, rankOrOffset);
        charge.apply(report.timing, report.energy);
        report.lutBroadcastSeconds += charge.seconds;
    };
    for (const PlanNode& node : workload.nodes) {
        chargeNode(node.gemm, node.plan, homeRank);
    }
    for (const ShardedGemm& node : workload.shardedNodes) {
        chargeNode(node.gemm, node.plan,
                   node.node * options_.numRanks);
    }
    return report;
}

ExecOptions
InferenceSession::execOptions(bool computeValues) const
{
    ExecOptions options;
    options.computeValues = computeValues;
    options.simd = options_.simdKernels;
    if (options_.tileParallel && workerCount() > 1) {
        options.tiles = &poolTiles_;
    }
    return options;
}

void
InferenceSession::runWhole(Request& request)
{
    FaultInjector* const inj = options_.faultInjector;
    FaultOutcome fault;
    fault.rank = request.homeRank;
    if (inj != nullptr) {
        // Resolve placement and injected transients deterministically up
        // front: residency must home its tables on the rank that
        // actually ends up serving the request.
        fault = resolveWholeFaults(*inj, options_.faultPolicy, request.id,
                                   request.homeRank);
        request.homeRank = fault.rank;
    }
    if (request.isWorkload) {
        request.report = runAt(request.workload, request.homeRank);
        if (inj != nullptr) {
            chargeFaultPenalty(request.report.timing, fault, *inj);
        }
        return;
    }
    // Plans are memoized; identical shapes across requests hit the cache.
    const GemmPlan plan = cache_.planFor(*backend_, request.problem,
                                         request.design, request.overrides);
    ExecOptions options = execOptions(request.computeValues);
    options.flatRank = request.homeRank;
    // Prepared operands are memoized alongside the plan (keyed by the
    // plan key + weight fingerprint), so repeated requests against the
    // same weights skip packing and table construction entirely.
    // Reference-only backends read nothing but the (tiny, ad-hoc)
    // decode codebooks, so caching full LUT operands for them would
    // only evict operands the LUT backends need.
    std::shared_ptr<const PreparedGemm> prepared;
    if (options_.prepareOperands && request.computeValues &&
        !backend_->capabilities().referenceFunctionalOnly &&
        !request.problem.w.codes.empty()) {
        prepared = cache_.preparedFor(*backend_, request.problem, plan,
                                      request.overrides);
        options.prepared = prepared.get();
    }
    request.result = backend_->execute(request.problem, plan, options);
    if (residency_ != nullptr) {
        residency_->acquire(plan, "", 1.0, request.homeRank)
            .apply(request.result.timing, request.result.energy,
                   &request.result.cost);
    }
    if (inj != nullptr) {
        chargeFaultPenalty(request.result.timing, fault, *inj);
    }
}

void
InferenceSession::runPlanStage(Request& request)
{
    // Cut the GEMM (memoized) and fan one shard task onto each rank's
    // queue; the submitting thread never pays the planning cost.
    FaultInjector* const inj = options_.faultInjector;
    ShardSpec spec{options_.numRanks, options_.shardStrategy, 1,
                   options_.numNodes};
    std::vector<unsigned> survivors;
    bool reshard = false;
    if (inj != nullptr) {
        survivors = inj->schedulableRanks();
        reshard = survivors.size() < rankQueues_.size();
        if (reshard) {
            if (survivors.empty()) {
                inj->noteShedFault();
                throw FaultShedError(FaultInjector::kNoRank,
                                     "fault shed: no schedulable rank "
                                     "left to cut the GEMM across");
            }
            if (!options_.faultPolicy.failover) {
                inj->noteShedFault();
                throw FaultShedError(survivors.front(),
                                     "fault shed: rank loss with "
                                     "failover disabled");
            }
            inj->noteFailover();
            if (survivors.size() == 1) {
                // One survivor leaves nothing to cut: serve the request
                // whole on it (bit-exact with the sharded reduction by
                // the numRanks = 1 equivalence).
                request.homeRank = survivors.front();
                runWhole(request);
                finishRequest(request);
                return;
            }
            // Re-shard over the survivor set: the survivor-count cut is
            // memoized like any other, the shards are remapped onto the
            // live ranks below, and the column/row reductions are exact
            // at any cut, so results stay bit-identical to healthy runs.
            spec = ShardSpec{static_cast<unsigned>(survivors.size()),
                             options_.shardStrategy, 1, 1};
        }
    }
    request.shardPlan = cache_.shardPlanFor(
        *backend_, request.problem, request.design, spec,
        request.overrides);
    if (reshard) {
        for (GemmShard& shard : request.shardPlan.shards) {
            shard.rank = survivors[shard.rank % survivors.size()];
        }
    }
    request.shardResults.resize(request.shardPlan.shards.size());
    {
        std::unique_lock<std::mutex> lock(mutex_);
        request.remainingShards =
            static_cast<unsigned>(request.shardPlan.shards.size());
        for (unsigned i = 0; i < request.shardPlan.shards.size(); ++i) {
            const unsigned rank =
                request.shardPlan.shards[i].rank %
                static_cast<unsigned>(rankQueues_.size());
            rankQueues_[rank].push_back(
                {&request, static_cast<int>(i), {}});
        }
    }
    queueCv_.notify_all();
}

void
InferenceSession::runShard(Request& request, unsigned shardIndex)
{
    FaultInjector* const inj = options_.faultInjector;
    FaultOutcome fault;
    if (inj != nullptr) {
        // Shards never hop ranks mid-flight — the survivor re-shard at
        // the plan stage is the failover — so exhausting the retry
        // budget sheds the whole request.
        fault.rank = request.shardPlan.shards[shardIndex].rank %
                     static_cast<unsigned>(rankQueues_.size());
        fault.retries = transientFailures(
            *inj, options_.faultPolicy, request.id, fault.rank,
            /*salt=*/static_cast<std::uint64_t>(shardIndex) + 1,
            fault.backoffSeconds);
        if (fault.retries >= options_.faultPolicy.maxAttempts) {
            inj->noteShedFault();
            throw FaultShedError(
                fault.rank, "fault shed: shard " +
                                std::to_string(shardIndex) +
                                " exhausted its attempts on rank " +
                                std::to_string(fault.rank));
        }
    }
    const GemmProblem slice =
        shardProblem(request.problem, request.shardPlan, shardIndex);
    const GemmPlan& plan = request.shardPlan.shards[shardIndex].plan;
    ExecOptions options = execOptions(request.computeValues);
    options.flatRank = request.shardPlan.shards[shardIndex].rank %
                       static_cast<unsigned>(rankQueues_.size());
    std::shared_ptr<const PreparedGemm> prepared;
    if (options_.prepareOperands && request.computeValues &&
        !backend_->capabilities().referenceFunctionalOnly &&
        !slice.w.codes.empty()) {
        prepared = cache_.preparedFor(*backend_, slice, plan,
                                      request.overrides);
        options.prepared = prepared.get();
    }
    request.shardResults[shardIndex] =
        backend_->execute(slice, plan, options);
    if (inj != nullptr) {
        chargeFaultPenalty(request.shardResults[shardIndex].timing, fault,
                           *inj);
    }
}

void
InferenceSession::finishRequest(Request& request)
{
    std::unique_lock<std::mutex> lock(mutex_);
    request.done = true;
    doneCv_.notify_all();
}

void
InferenceSession::runTileBatch(std::size_t tiles,
                               const std::function<void(std::size_t)>& fn)
{
    if (tiles == 0) {
        return;
    }
    if (tiles == 1 || workerCount() <= 1 || tlDrainingSession == this) {
        // Serial shapes, a single-worker session, and NESTED
        // submissions (a tile closure re-entering the session executor
        // it is already draining a tile of) all drain inline.
        for (std::size_t i = 0; i < tiles; ++i) {
            fn(i);
        }
        return;
    }
    auto batch = std::make_shared<TileBatch>();
    batch->fn = &fn;
    batch->count = tiles;
    batch->claimChunk = claimChunkFor(tiles, workerCount() + 1);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Front of every rank queue: an idle worker's next pop helps
        // finish the GEMM someone is already executing.  A stale claim
        // task (batch already exhausted) is popped and dropped.
        for (auto& queue : rankQueues_) {
            queue.push_front(Task{nullptr, kTileTask, batch});
        }
    }
    queueCv_.notify_all();
    // Participate: the submitting thread claims tiles too, so the batch
    // completes even if every worker is busy elsewhere.
    bool last;
    {
        SessionDrainScope scope(this);
        last = batch->drain();
    }
    if (last) {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.notify_all();
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&batch] { return batch->settled(); });
    }
    batch->rethrowIfError();
}

void
InferenceSession::runTask(const Task& task)
{
    if (task.shard == kTileTask) {
        bool last;
        {
            SessionDrainScope scope(this);
            last = task.tiles->drain();
        }
        if (last) {
            std::unique_lock<std::mutex> lock(mutex_);
            doneCv_.notify_all();
        }
        return;
    }
    Request& request = *task.request;
    if (task.shard == kPlanTask) {
        try {
            runPlanStage(request);
        } catch (...) {
            request.error = std::current_exception();
            finishRequest(request);
        }
        return;
    }
    if (task.shard == kWholeTask) {
        try {
            runWhole(request);
        } catch (...) {
            request.error = std::current_exception();
        }
        finishRequest(request);
        return;
    }
    // One shard of a sharded GEMM.  The last shard to finish reduces in
    // shard-index order, so the result is deterministic regardless of
    // which workers ran which shards in what order.
    try {
        runShard(request, static_cast<unsigned>(task.shard));
    } catch (...) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!request.error) {
            request.error = std::current_exception();
        }
    }
    bool last = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        LOCALUT_ASSERT(request.remainingShards > 0,
                       "shard finished on a settled request");
        last = --request.remainingShards == 0;
    }
    if (!last) {
        return;
    }
    if (!request.error) {
        try {
            request.result =
                reduceShardResults(*backend_, request.shardPlan,
                                   std::move(request.shardResults));
            if (residency_ != nullptr) {
                // Each shard's table set consumes its own rank's budget.
                residency_->acquire(request.shardPlan)
                    .apply(request.result.timing, request.result.energy,
                           &request.result.cost);
            }
        } catch (...) {
            request.error = std::current_exception();
        }
    }
    finishRequest(request);
}

void
InferenceSession::workerLoop(unsigned workerIndex)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        queueCv_.wait(
            lock, [this] { return stopping_ || anyQueuedLocked(); });
        if (!anyQueuedLocked()) {
            if (stopping_) {
                return;
            }
            continue;
        }
        const Task task = popTaskLocked(workerIndex);
        lock.unlock();
        runTask(task);
        lock.lock();
    }
}

std::unique_ptr<InferenceSession::Request>
InferenceSession::take(RequestId id, bool wantWorkload)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = requests_.find(id);
    LOCALUT_REQUIRE(it != requests_.end(),
                    "unknown (or already waited-on) request id ", id);
    Request* request = it->second.get();
    LOCALUT_REQUIRE(!request->claimed,
                    "request ", id, " already has a waiter");
    LOCALUT_REQUIRE(request->isWorkload == wantWorkload,
                    wantWorkload ? "waitReport() on a GEMM request"
                                 : "wait() on a workload request");
    // The claim keeps concurrent waiters out; the pointer stays valid
    // across the wait (node-based map), but `it` may not (rehash on
    // concurrent submits), so re-find before erasing.
    request->claimed = true;
    doneCv_.wait(lock, [request] { return request->done; });
    auto again = requests_.find(id);
    LOCALUT_ASSERT(again != requests_.end(), "claimed request vanished");
    std::unique_ptr<Request> owned = std::move(again->second);
    requests_.erase(again);
    return owned;
}

GemmResult
InferenceSession::wait(RequestId id)
{
    std::unique_ptr<Request> request = take(id, /*wantWorkload=*/false);
    if (request->error) {
        std::rethrow_exception(request->error);
    }
    return std::move(request->result);
}

InferenceReport
InferenceSession::waitReport(RequestId id)
{
    std::unique_ptr<Request> request = take(id, /*wantWorkload=*/true);
    if (request->error) {
        std::rethrow_exception(request->error);
    }
    return request->report;
}

void
InferenceSession::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [this] {
        if (anyQueuedLocked()) {
            return false;
        }
        return std::all_of(requests_.begin(), requests_.end(),
                           [](const auto& kv) { return kv.second->done; });
    });
}

std::size_t
InferenceSession::pendingRequests() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::size_t pending = 0;
    for (const auto& [id, request] : requests_) {
        if (!request->done) {
            ++pending;
        }
    }
    return pending;
}

} // namespace localut
