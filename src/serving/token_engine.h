#ifndef LOCALUT_SERVING_TOKEN_ENGINE_H_
#define LOCALUT_SERVING_TOKEN_ENGINE_H_

/**
 * @file
 * Token-level serving: prefill/decode disaggregation with continuous
 * batching over an InferenceSession, and the KV-cache as a first-class
 * MRAM resident.
 *
 * The session/scheduler layers (serving/session.h, serving/scheduler.h)
 * serve *whole workloads*: a 32-step decode is one request, sequenced
 * and charged as a block.  A real LLM frontend cannot do that — tokens
 * stream out one decode step at a time, new conversations arrive while
 * old ones are mid-generation, and the interactive SLO is *per token*.
 * The TokenEngine closes that gap:
 *
 *  - A TokenRequest describes one conversation: a prompt to prefill, a
 *    number of tokens to decode, a TTFT (time-to-first-token) deadline
 *    and a per-token deadline.
 *  - Streams are placed on a rank (data-parallel: each rank is a
 *    replica) and served by a virtual-time loop that re-forms every
 *    rank's decode batch *every step* — in-flight streams are
 *    re-batched, finished streams leave, and newly prefilled streams
 *    join between steps (continuous batching).  A rank's decode step
 *    executes one pinned decodeStep() workload whose GEMM batch is a
 *    power-of-two *tier*, so the step's LUT table-set identity is
 *    stable across steps and positions: steady-state decode pays zero
 *    LUT rebroadcast (the paper's capacity-for-computation tradeoff,
 *    operationalized at serving time).
 *  - Each step charges the stream's KV-cache growth through
 *    ResidencyManager::acquireKv(): KV bytes grow by one token per
 *    step and compete with LUT table sets for the same per-rank MRAM
 *    budget, with cost-driven cross-class eviction (see
 *    serving/residency.h).  A stream whose KV can never fit is shed.
 *  - Prefill and decode are disaggregated lanes (DeadlineClass::Prefill
 *    / DeadlineClass::Decode): decode steps outrank prefill admission
 *    whenever admitting a prompt would blow an active stream's next
 *    token deadline (SchedulerPolicy::Slo); SchedulerPolicy::Fifo
 *    admits in arrival order and never sheds (the throughput-oriented
 *    baseline).  Telemetry gains per-lane TTFT and inter-token
 *    histograms plus KV-residency gauges.
 *
 * Costs are modeled virtual-time seconds throughout (the repository's
 * TimingReport units); functional values are optionally carried by a
 * per-stream *probe* GEMM executed bit-exactly through the session each
 * decode step, so tests can pin that continuous batching never changes
 * values (tests/test_token_engine.cc).
 */

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "nn/workload.h"
#include "serving/scheduler.h"
#include "serving/session.h"
#include "serving/telemetry.h"

namespace localut {

/** One conversation request served token-by-token. */
struct TokenRequest {
    /** Prompt tokens ingested by the prefill phase. */
    unsigned promptLen = 1;
    /** Decode steps to run (tokens generated after the first). */
    unsigned decodeSteps = 1;
    /** Virtual arrival time; must be monotone across submit() calls
     * (negative clamps to the previous arrival). */
    double arrivalSeconds = 0;
    /** Arrival -> first token (prefill completion) bound; +inf = none. */
    double ttftDeadlineSeconds = std::numeric_limits<double>::infinity();
    /**
     * Per-token spacing bound: decode step t must complete by
     * base + (t + 1) * tokenDeadlineSeconds, where base is the TTFT
     * deadline when finite, else the actual first-token time.  The
     * schedule is *absolute* (anchored at arrival), so a backlogged
     * serial server cannot meet it by spacing late tokens evenly.
     * +inf = no per-token bound.
     */
    double tokenDeadlineSeconds = std::numeric_limits<double>::infinity();
    /**
     * Optional functional probe: when true, @ref probeProblem executes
     * with computeValues = true through the session (pinned to the
     * stream's rank) after every decode step, and its output lands in
     * StreamResult::probeOutputs.  Probes are test instrumentation:
     * their modeled cost is *not* added to the virtual clock, but their
     * LUT tables do occupy residency budget — use generous budgets when
     * probing.
     */
    bool probe = false;
    GemmProblem probeProblem; ///< the probe GEMM (when probe is true)
};

/** Terminal state of one stream. */
enum class StreamStatus {
    Completed,    ///< all decodeSteps tokens emitted
    ShedDeadline, ///< shed: a token deadline was already unmeetable
    ShedCapacity, ///< shed: the stream's KV can never fit its rank
    ShedFault,    ///< shed: rank faults left no live rank to serve it
};

/** Status name for reports ("completed" / "shed_deadline" / ...). */
const char* streamStatusName(StreamStatus status);

/** Outcome of one stream after run(). */
struct StreamResult {
    std::uint64_t id = 0;          ///< engine stream id (submit order)
    StreamStatus status = StreamStatus::Completed; ///< terminal state
    unsigned rank = 0;             ///< replica rank the stream lived on
    double arrivalSeconds = 0;     ///< virtual arrival
    /** First-token (prefill completion) virtual time; < 0 when the
     * stream was shed before prefilling. */
    double firstTokenSeconds = -1;
    double completionSeconds = 0;  ///< virtual end (last token or shed)
    /** Virtual emission time of each decode token, in order. */
    std::vector<double> tokenSeconds;
    /** Absolute deadline of each emitted decode token (+inf when the
     * request had no per-token bound); parallel to tokenSeconds. */
    std::vector<double> tokenDeadlines;
    /** Probe GEMM output after each decode step (empty unless
     * TokenRequest::probe; integer configs only). */
    std::vector<std::vector<std::int32_t>> probeOutputs;
    bool ttftMet = true;           ///< prefill completed by its deadline
    unsigned tokensMet = 0;        ///< decode tokens within deadline
    unsigned tokensMissed = 0;     ///< decode tokens past a finite bound

    /** Decode tokens actually emitted. */
    unsigned tokensEmitted() const
    {
        return static_cast<unsigned>(tokenSeconds.size());
    }

    /** Time to first token; < 0 when the stream never prefilled. */
    double ttftSeconds() const
    {
        return firstTokenSeconds < 0 ? -1.0
                                     : firstTokenSeconds - arrivalSeconds;
    }
};

/** One executed engine step (prefill or batched decode), for tests and
 * cold/steady accounting: the golden invariant is that only first-touch
 * steps carry lutBroadcastSeconds while kvResidentBytes grows every
 * decode step. */
struct StepTrace {
    bool decode = false;       ///< false = prefill admission
    unsigned rank = 0;         ///< rank the step executed on
    unsigned streams = 0;      ///< streams served (1 for prefill)
    unsigned tier = 0;         ///< GEMM batch tier (decode; 0 otherwise)
    double startSeconds = 0;   ///< virtual start
    double endSeconds = 0;     ///< virtual end (incl. KV transfer time)
    double lutBroadcastSeconds = 0; ///< cold-start table transfer share
    double kvSeconds = 0;      ///< KV append/refill/spill transfer share
    std::uint64_t kvResidentBytes = 0; ///< raw KV bytes resident after
};

/** Engine-wide knobs: one engine serves one model deployment. */
struct TokenEngineOptions {
    TransformerConfig model = TransformerConfig::opt125m(); ///< the model
    QuantConfig quant{ValueCodec::signedBinary(),
                      ValueCodec::signedBinary()}; ///< quantization
    DesignPoint design = DesignPoint::LoCaLut;     ///< design point
    PlanOverrides overrides;                       ///< planner overrides
    /** Slo sheds streams with unmeetable token deadlines and defers
     * prompt admission that would blow them; Fifo admits in arrival
     * order and never sheds (baseline). */
    SchedulerPolicy policy = SchedulerPolicy::Slo;
    /**
     * Re-batch in-flight decode streams every step and admit new
     * prefills between steps.  false degrades to serial per-request
     * service — each rank runs one stream start-to-finish — the
     * baseline the conversation-trace bench compares against.
     */
    bool continuousBatching = true;
    /** Concurrent decode streams one rank may hold (also the largest
     * batch tier); must be >= 1. */
    unsigned maxStreamsPerRank = 8;
    /** KV-cache quantization (bits per stored K/V value). */
    unsigned kvBitsPerValue = 16;
};

/**
 * Token-level serving engine over one InferenceSession.
 *
 * Usage:
 *     InferenceSession session("upmem", options);
 *     TokenEngine engine(session, engineOptions, &telemetry);
 *     engine.submit({.promptLen = 64, .decodeSteps = 16, ...});
 *     std::vector<StreamResult> results = engine.run();
 *
 * run() drives every submitted stream to a terminal state in virtual
 * time and returns per-stream results; stepTraces() exposes the
 * per-step cost ledger and aggregateReport() the summed execution
 * reports.  Thread-safety: submit()/run() are internally locked (one
 * run() at a time; concurrent engines may share a session).
 */
class TokenEngine
{
  public:
    /**
     * Binds the engine to @p session (which supplies the backend, the
     * worker pool, and — when its residency policy is enabled — the
     * MRAM budget KV and LUT state compete for).  @p telemetry, when
     * given, receives per-lane admissions, TTFT / inter-token samples,
     * and KV-residency gauges.
     */
    TokenEngine(InferenceSession& session,
                const TokenEngineOptions& options = {},
                Telemetry* telemetry = nullptr);

    /** The options the engine was opened with. */
    const TokenEngineOptions& options() const { return options_; }

    /** Enqueues one conversation stream; returns its stream id.
     * Arrivals must be monotone in submit order. */
    std::uint64_t submit(const TokenRequest& request);

    /**
     * Serves every submitted stream to a terminal state and returns
     * the results in stream-id order.  Deterministic for a given
     * submission sequence.  May be called repeatedly (each call serves
     * the streams submitted since the last).
     */
    std::vector<StreamResult> run();

    /** Per-step ledger of every run() so far, in execution order. */
    std::vector<StepTrace> stepTraces() const;

    /** Summed execution reports (prefills + decode steps + KV charges)
     * across every run() so far. */
    InferenceReport aggregateReport() const;

  private:
    struct Stream;
    struct RankState;

    /** Largest power-of-two batch tier <= maxStreamsPerRank covering
     * @p active streams (padding up, so every stream steps). */
    unsigned tierFor(unsigned active) const;
    const InferenceSession::CompiledWorkload& decodeGraph(unsigned tier);
    const InferenceSession::CompiledWorkload&
    prefillGraph(unsigned promptLen);
    double projectSeconds(const InferenceSession::CompiledWorkload& graph);
    void runLocked(std::vector<Stream>& streams);
    bool admitPrefill(RankState& rank, std::vector<Stream>& streams);
    void runDecodeStep(RankState& rank, std::vector<Stream>& streams);
    void finishStream(Stream& stream, StreamStatus status, double now);
    void recordKvGauges();

    InferenceSession& session_;
    TokenEngineOptions options_;
    Telemetry* telemetry_;

    mutable std::mutex mutex_;
    std::vector<TokenRequest> queued_;   ///< submitted, not yet run
    std::uint64_t nextStream_ = 0;       ///< stream ids (submit order)
    double lastArrival_ = 0;             ///< monotone-arrival clamp
    std::vector<double> rankFreeAt_;     ///< per-rank virtual clocks
    /** Compiled decode graphs, one per batch tier (stable table-set
     * identity across steps is what zero steady-state rebroadcast
     * rests on). */
    std::map<unsigned, InferenceSession::CompiledWorkload> decodeGraphs_;
    std::map<unsigned, InferenceSession::CompiledWorkload> prefillGraphs_;
    std::map<unsigned, double> decodeStepSeconds_; ///< per-tier GEMM cost
    std::map<unsigned, double> prefillSeconds_;    ///< per-length cost
    std::vector<StepTrace> traces_;
    InferenceReport aggregate_;
};

} // namespace localut

#endif // LOCALUT_SERVING_TOKEN_ENGINE_H_
