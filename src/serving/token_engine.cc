#include "serving/token_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "serving/fault.h"

namespace localut {

namespace {

/** Folds one execution report into a running aggregate. */
void
addReport(InferenceReport& into, const InferenceReport& part)
{
    accumulate(into.timing, part.timing);
    accumulate(into.energy, part.energy);
    into.gemmSeconds += part.gemmSeconds;
    into.hostOpSeconds += part.hostOpSeconds;
    into.collectiveSeconds += part.collectiveSeconds;
    into.lutBroadcastSeconds += part.lutBroadcastSeconds;
}

/**
 * Engines sharing one InferenceSession share its ResidencyManager, so
 * KV stream identities are salted per engine instance to keep two
 * engines' stream 0 from aliasing.
 */
std::uint64_t
nextEngineSalt()
{
    static std::atomic<std::uint64_t> counter{0};
    return (counter.fetch_add(1) + 1) << 32;
}

} // namespace

const char*
streamStatusName(StreamStatus status)
{
    switch (status) {
      case StreamStatus::Completed:    return "completed";
      case StreamStatus::ShedDeadline: return "shed_deadline";
      case StreamStatus::ShedCapacity: return "shed_capacity";
      case StreamStatus::ShedFault:    return "shed_fault";
    }
    LOCALUT_PANIC("invalid stream status");
}

/** One in-flight conversation (request + mutable serving state). */
struct TokenEngine::Stream {
    TokenRequest req;
    StreamResult result;
    unsigned step = 0;          ///< decode steps completed
    /** Anchor of the absolute per-token deadline schedule; set at
     * prefill completion (the TTFT deadline when finite, else the
     * actual first-token time). */
    double deadlineBase = std::numeric_limits<double>::infinity();
    bool done = false;

    /** Absolute deadline of decode token @p t (+inf when unbounded). */
    double tokenDeadline(unsigned t) const
    {
        if (!std::isfinite(req.tokenDeadlineSeconds)) {
            return std::numeric_limits<double>::infinity();
        }
        return deadlineBase + (t + 1) * req.tokenDeadlineSeconds;
    }

    /** TTFT bound (+inf when the request has none). */
    double ttftDeadline() const
    {
        return req.arrivalSeconds + req.ttftDeadlineSeconds;
    }
};

/** One replica rank's serving state inside runLocked(). */
struct TokenEngine::RankState {
    unsigned rank = 0;
    double freeAt = 0;                ///< virtual clock of this rank
    std::vector<std::size_t> pending; ///< placed, awaiting prefill
    std::vector<std::size_t> active;  ///< mid-decode streams

    bool hasWork() const { return !pending.empty() || !active.empty(); }
};

TokenEngine::TokenEngine(InferenceSession& session,
                         const TokenEngineOptions& options,
                         Telemetry* telemetry)
    : session_(session), options_(options), telemetry_(telemetry)
{
    LOCALUT_REQUIRE(options_.maxStreamsPerRank >= 1,
                    "TokenEngine needs at least one stream per rank");
    LOCALUT_REQUIRE(options_.kvBitsPerValue >= 1,
                    "TokenEngine needs a KV quantization width");
    rankFreeAt_.assign(session_.totalRanks(), 0.0);
    nextStream_ = nextEngineSalt();
}

std::uint64_t
TokenEngine::submit(const TokenRequest& request)
{
    LOCALUT_REQUIRE(request.promptLen >= 1, "empty prompt");
    LOCALUT_REQUIRE(request.decodeSteps >= 1, "no tokens to decode");
    std::lock_guard<std::mutex> lock(mutex_);
    TokenRequest req = request;
    if (req.arrivalSeconds < lastArrival_) {
        req.arrivalSeconds = lastArrival_; // monotone-arrival clamp
    }
    lastArrival_ = req.arrivalSeconds;
    queued_.push_back(std::move(req));
    return nextStream_ + (queued_.size() - 1);
}

unsigned
TokenEngine::tierFor(unsigned active) const
{
    unsigned tier = 1;
    while (tier < active) {
        tier <<= 1;
    }
    return tier;
}

const InferenceSession::CompiledWorkload&
TokenEngine::decodeGraph(unsigned tier)
{
    auto it = decodeGraphs_.find(tier);
    if (it == decodeGraphs_.end()) {
        // One graph per batch tier, compiled once: its GEMM shapes (and
        // so its LUT table-set identity) depend only on the tier, never
        // on sequence position — the invariant steady-state
        // zero-rebroadcast decode rests on.  hostOps is a placeholder
        // overwritten per step with the batch's true positions.
        it = decodeGraphs_
                 .emplace(tier,
                          session_.compileUnsharded(
                              WorkloadSpec::decodeStep(
                                  options_.model, tier,
                                  options_.model.defaultSeqLen),
                              options_.quant, options_.design,
                              options_.overrides))
                 .first;
    }
    return it->second;
}

const InferenceSession::CompiledWorkload&
TokenEngine::prefillGraph(unsigned promptLen)
{
    // Prompts pad up to power-of-two length tiers so a trace with many
    // distinct lengths shares a handful of table sets instead of
    // thrashing the MRAM budget with one set per length.
    const unsigned tier = tierFor(promptLen);
    auto it = prefillGraphs_.find(tier);
    if (it == prefillGraphs_.end()) {
        it = prefillGraphs_
                 .emplace(tier, session_.compileUnsharded(
                                    WorkloadSpec::prefill(options_.model,
                                                          1, tier),
                                    options_.quant, options_.design,
                                    options_.overrides))
                 .first;
    }
    return it->second;
}

double
TokenEngine::projectSeconds(const InferenceSession::CompiledWorkload& graph)
{
    return session_.projectCost(graph).totalSeconds();
}

void
TokenEngine::finishStream(Stream& stream, StreamStatus status, double now)
{
    stream.result.status = status;
    stream.result.completionSeconds = now;
    stream.done = true;
    if (ResidencyManager* residency = session_.residency()) {
        residency->releaseKv(stream.result.id);
    }
    if (telemetry_ != nullptr && status == StreamStatus::Completed &&
        stream.result.firstTokenSeconds >= 0) {
        RequestSample sample;
        sample.id = stream.result.id;
        sample.lane = DeadlineClass::Decode;
        sample.arrivalSeconds = stream.req.arrivalSeconds;
        sample.startSeconds = stream.result.firstTokenSeconds;
        sample.completionSeconds = now;
        sample.serviceSeconds = now - stream.result.firstTokenSeconds;
        sample.deadlineSeconds =
            stream.result.tokenDeadlines.empty()
                ? std::numeric_limits<double>::infinity()
                : stream.result.tokenDeadlines.back();
        telemetry_->recordCompletion(sample);
    }
}

void
TokenEngine::recordKvGauges()
{
    if (telemetry_ == nullptr || session_.residency() == nullptr) {
        return;
    }
    const ResidencyStats stats = session_.residencyStats();
    KvResidencyGauges gauges;
    gauges.residentBytes = stats.kvResidentBytes;
    gauges.streams = stats.kvStreams;
    gauges.spills = stats.kvSpills;
    gauges.refills = stats.kvRefills;
    gauges.sheds = stats.kvSheds;
    gauges.lutEvictions = stats.evictions;
    telemetry_->recordKvResidency(gauges);
}

bool
TokenEngine::admitPrefill(RankState& rank, std::vector<Stream>& streams)
{
    if (rank.pending.empty()) {
        return false;
    }
    const double now = rank.freeAt;
    if (!rank.active.empty()) {
        if (!options_.continuousBatching) {
            return false; // serial baseline: one stream start-to-finish
        }
        if (rank.active.size() >= options_.maxStreamsPerRank) {
            return false; // decode capacity full; step first
        }
        if (options_.policy == SchedulerPolicy::Slo) {
            // Interference check: admitting this prompt stalls every
            // active stream for the prefill plus the (grown) next decode
            // step — defer when that would blow a token deadline (the
            // decode lane outranks prefill, deadlineClassPriority()).
            Stream& head = streams[rank.pending.front()];
            const double stall =
                projectSeconds(prefillGraph(head.req.promptLen)) +
                projectSeconds(decodeGraph(tierFor(
                    static_cast<unsigned>(rank.active.size()) + 1)));
            for (const std::size_t s : rank.active) {
                if (streams[s].tokenDeadline(streams[s].step) <
                    now + stall) {
                    return false;
                }
            }
        }
    }

    Stream& stream = streams[rank.pending.front()];
    rank.pending.erase(rank.pending.begin());
    if (telemetry_ != nullptr) {
        telemetry_->recordAdmission(DeadlineClass::Prefill,
                                    AdmissionOutcome::Admitted);
    }
    const InferenceSession::CompiledWorkload& graph =
        prefillGraph(stream.req.promptLen);
    const InferenceSession::RequestId id = session_.submit(
        graph, SubmitOptions{static_cast<int>(rank.rank)});
    InferenceReport report;
    try {
        report = session_.waitReport(id);
    } catch (const FaultShedError&) {
        // The prefill could not land on any live rank (the injector
        // already counted the shed): fault-shed the stream.
        if (telemetry_ != nullptr) {
            telemetry_->recordAdmission(DeadlineClass::Prefill,
                                        AdmissionOutcome::ShedFault);
        }
        finishStream(stream, StreamStatus::ShedFault, now);
        return true;
    }
    double serviceSeconds = report.timing.total;

    KvCharge kv;
    if (ResidencyManager* residency = session_.residency()) {
        kv = residency->acquireKv(
            stream.result.id, rank.rank, options_.model.layers,
            options_.model.kvBytesPerTokenPerLayer(options_.kvBitsPerValue),
            stream.req.promptLen);
        kv.apply(report.timing, report.energy);
        serviceSeconds += kv.seconds();
    }
    addReport(aggregate_, report);

    const double end = now + serviceSeconds;
    rank.freeAt = end;
    stream.result.firstTokenSeconds = end;
    stream.result.ttftMet = end <= stream.ttftDeadline();
    stream.deadlineBase = std::isfinite(stream.req.ttftDeadlineSeconds)
                              ? stream.ttftDeadline()
                              : end;
    if (telemetry_ != nullptr) {
        telemetry_->recordTtft(DeadlineClass::Prefill,
                               end - stream.req.arrivalSeconds);
    }

    StepTrace trace;
    trace.decode = false;
    trace.rank = rank.rank;
    trace.streams = 1;
    trace.startSeconds = now;
    trace.endSeconds = end;
    trace.lutBroadcastSeconds = report.lutBroadcastSeconds;
    trace.kvSeconds = kv.seconds();
    trace.kvResidentBytes = session_.residencyStats().kvResidentBytes;
    traces_.push_back(trace);
    recordKvGauges();

    if (kv.shed) {
        // The prompt alone can never fit the rank's MRAM: capacity shed.
        if (telemetry_ != nullptr) {
            telemetry_->recordAdmission(
                DeadlineClass::Decode,
                AdmissionOutcome::RejectedSaturated);
        }
        finishStream(stream, StreamStatus::ShedCapacity, end);
        return true;
    }
    rank.active.push_back(&stream - streams.data());
    return true;
}

void
TokenEngine::runDecodeStep(RankState& rank, std::vector<Stream>& streams)
{
    const double now = rank.freeAt;
    const auto batch = static_cast<unsigned>(rank.active.size());
    const unsigned tier = tierFor(batch);
    const InferenceSession::CompiledWorkload& graph = decodeGraph(tier);

    // The step's GEMMs run at the padded tier batch (stable table-set
    // identity); the host attention work is the exact per-position sum
    // over the streams actually served.
    InferenceSession::CompiledWorkload step = graph;
    step.hostOps = 0;
    for (const std::size_t s : rank.active) {
        const Stream& stream = streams[s];
        step.hostOps += workloadHostOps(WorkloadSpec::decodeStep(
            options_.model, 1, stream.req.promptLen + stream.step));
    }
    const InferenceSession::RequestId id = session_.submit(
        std::move(step), SubmitOptions{static_cast<int>(rank.rank)});
    InferenceReport report;
    try {
        report = session_.waitReport(id);
    } catch (const FaultShedError&) {
        // The batched step could not land on any live rank: fault-shed
        // every stream it was serving.
        for (const std::size_t s : rank.active) {
            if (telemetry_ != nullptr) {
                telemetry_->recordAdmission(DeadlineClass::Decode,
                                            AdmissionOutcome::ShedFault);
            }
            finishStream(streams[s], StreamStatus::ShedFault, now);
        }
        rank.active.clear();
        return;
    }
    double serviceSeconds = report.timing.total;

    double kvSeconds = 0;
    std::vector<std::size_t> capacityShed;
    if (ResidencyManager* residency = session_.residency()) {
        const std::uint64_t perToken =
            options_.model.kvBytesPerTokenPerLayer(options_.kvBitsPerValue);
        for (const std::size_t s : rank.active) {
            Stream& stream = streams[s];
            const KvCharge kv = residency->acquireKv(
                stream.result.id, rank.rank, options_.model.layers,
                perToken, stream.req.promptLen + stream.step + 1);
            if (kv.shed) {
                capacityShed.push_back(s);
                continue;
            }
            kv.apply(report.timing, report.energy);
            kvSeconds += kv.seconds();
        }
        serviceSeconds += kvSeconds;
    }
    addReport(aggregate_, report);

    const double end = now + serviceSeconds;
    rank.freeAt = end;

    for (const std::size_t s : capacityShed) {
        if (telemetry_ != nullptr) {
            telemetry_->recordAdmission(
                DeadlineClass::Decode,
                AdmissionOutcome::RejectedSaturated);
        }
        finishStream(streams[s], StreamStatus::ShedCapacity, end);
    }

    std::vector<std::size_t> survivors;
    survivors.reserve(rank.active.size());
    for (const std::size_t s : rank.active) {
        Stream& stream = streams[s];
        if (stream.done) {
            continue; // capacity-shed above
        }
        const double previous = stream.result.tokenSeconds.empty()
                                    ? stream.result.firstTokenSeconds
                                    : stream.result.tokenSeconds.back();
        const double deadline = stream.tokenDeadline(stream.step);
        const bool met = end <= deadline;
        stream.result.tokenSeconds.push_back(end);
        stream.result.tokenDeadlines.push_back(deadline);
        if (met) {
            ++stream.result.tokensMet;
        } else {
            ++stream.result.tokensMissed;
        }
        if (telemetry_ != nullptr) {
            telemetry_->recordToken(DeadlineClass::Decode, end - previous,
                                    met);
        }
        if (stream.req.probe) {
            const InferenceSession::RequestId probeId = session_.submit(
                stream.req.probeProblem, options_.design,
                /*computeValues=*/true, options_.overrides,
                SubmitOptions{static_cast<int>(rank.rank)});
            stream.result.probeOutputs.push_back(
                session_.wait(probeId).outInt);
        }
        ++stream.step;
        if (stream.step >= stream.req.decodeSteps) {
            finishStream(stream, StreamStatus::Completed, end);
        } else {
            survivors.push_back(s);
        }
    }
    rank.active = std::move(survivors);

    StepTrace trace;
    trace.decode = true;
    trace.rank = rank.rank;
    trace.streams = batch;
    trace.tier = tier;
    trace.startSeconds = now;
    trace.endSeconds = end;
    trace.lutBroadcastSeconds = report.lutBroadcastSeconds;
    trace.kvSeconds = kvSeconds;
    trace.kvResidentBytes = session_.residencyStats().kvResidentBytes;
    traces_.push_back(trace);
    recordKvGauges();
}

void
TokenEngine::runLocked(std::vector<Stream>& streams)
{
    FaultInjector* injector = session_.options().faultInjector;
    std::vector<RankState> ranks(rankFreeAt_.size());
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        ranks[r].rank = static_cast<unsigned>(r);
        ranks[r].freeAt = rankFreeAt_[r];
    }

    // Quarantined and dead ranks take no *new* placements; streams
    // already active on a quarantined rank keep being served there.
    const auto placeable = [&](const RankState& rank) {
        return injector == nullptr || injector->schedulable(rank.rank);
    };

    std::size_t nextPlacement = 0; // streams are in arrival order
    const auto anyWork = [&] {
        return std::any_of(ranks.begin(), ranks.end(),
                           [](const RankState& r) { return r.hasWork(); });
    };

    while (nextPlacement < streams.size() || anyWork()) {
        const double tArrival =
            nextPlacement < streams.size()
                ? streams[nextPlacement].req.arrivalSeconds
                : std::numeric_limits<double>::infinity();
        RankState* next = nullptr;
        for (RankState& rank : ranks) {
            if (rank.hasWork() &&
                (next == nullptr || rank.freeAt < next->freeAt)) {
                next = &rank;
            }
        }
        if (next == nullptr || tArrival <= next->freeAt) {
            // Place the arrival first (ties included, so a prompt
            // arriving exactly at a step boundary can join that batch):
            // fewest streams, then earliest-free, then lowest rank.
            Stream& stream = streams[nextPlacement];
            if (injector != nullptr) {
                injector->advanceTo(stream.req.arrivalSeconds);
            }
            RankState* best = nullptr;
            for (RankState& rank : ranks) {
                if (!placeable(rank)) {
                    continue;
                }
                const auto load = rank.pending.size() + rank.active.size();
                if (best == nullptr ||
                    std::make_tuple(load, rank.freeAt, rank.rank) <
                        std::make_tuple(best->pending.size() +
                                            best->active.size(),
                                        best->freeAt, best->rank)) {
                    best = &rank;
                }
            }
            if (best == nullptr) {
                // Faults left no rank accepting placements: shed on
                // arrival rather than queueing onto a dead replica.
                injector->noteShedFault();
                if (telemetry_ != nullptr) {
                    telemetry_->recordAdmission(DeadlineClass::Prefill,
                                                AdmissionOutcome::ShedFault);
                }
                finishStream(stream, StreamStatus::ShedFault,
                             stream.req.arrivalSeconds);
                ++nextPlacement;
                continue;
            }
            stream.result.rank = best->rank;
            best->freeAt = std::max(best->freeAt,
                                    stream.req.arrivalSeconds);
            best->pending.push_back(nextPlacement);
            ++nextPlacement;
            continue;
        }

        RankState& rank = *next;
        const double now = rank.freeAt;
        if (injector != nullptr) {
            injector->advanceTo(now);
            if (injector->health(rank.rank) == RankHealth::Dead) {
                // Evacuate a dead rank: re-home its streams onto the
                // least-loaded surviving rank (their KV was displaced by
                // the rank-loss listener and refills on next touch), or
                // shed them when no survivor remains.
                RankState* target = nullptr;
                for (RankState& other : ranks) {
                    if (&other == &rank || !placeable(other)) {
                        continue;
                    }
                    if (target == nullptr ||
                        std::make_tuple(other.pending.size() +
                                            other.active.size(),
                                        other.freeAt, other.rank) <
                            std::make_tuple(target->pending.size() +
                                                target->active.size(),
                                            target->freeAt,
                                            target->rank)) {
                        target = &other;
                    }
                }
                const auto evacuate = [&](std::vector<std::size_t>& from) {
                    for (const std::size_t s : from) {
                        Stream& stream = streams[s];
                        if (target == nullptr) {
                            injector->noteShedFault();
                            if (telemetry_ != nullptr) {
                                telemetry_->recordAdmission(
                                    DeadlineClass::Decode,
                                    AdmissionOutcome::ShedFault);
                            }
                            finishStream(stream, StreamStatus::ShedFault,
                                         now);
                        } else {
                            injector->noteFailover();
                            stream.result.rank = target->rank;
                        }
                    }
                };
                evacuate(rank.pending);
                evacuate(rank.active);
                if (target != nullptr) {
                    target->pending.insert(target->pending.end(),
                                           rank.pending.begin(),
                                           rank.pending.end());
                    target->active.insert(target->active.end(),
                                          rank.active.begin(),
                                          rank.active.end());
                    // Migration cannot land before the death was
                    // observed; the survivor inherits that lower bound.
                    target->freeAt = std::max(target->freeAt, now);
                }
                rank.pending.clear();
                rank.active.clear();
                continue;
            }
        }
        if (options_.policy == SchedulerPolicy::Slo) {
            // Shed pass: anything already past its next bound cannot be
            // served in time no matter what this rank does now.
            for (auto it = rank.pending.begin();
                 it != rank.pending.end();) {
                Stream& stream = streams[*it];
                if (stream.ttftDeadline() < now) {
                    if (telemetry_ != nullptr) {
                        telemetry_->recordAdmission(
                            DeadlineClass::Prefill,
                            AdmissionOutcome::ShedDeadline);
                    }
                    stream.result.ttftMet = false;
                    finishStream(stream, StreamStatus::ShedDeadline, now);
                    it = rank.pending.erase(it);
                } else {
                    ++it;
                }
            }
            for (auto it = rank.active.begin(); it != rank.active.end();) {
                Stream& stream = streams[*it];
                if (stream.tokenDeadline(stream.step) < now) {
                    if (telemetry_ != nullptr) {
                        telemetry_->recordAdmission(
                            DeadlineClass::Decode,
                            AdmissionOutcome::ShedDeadline);
                    }
                    finishStream(stream, StreamStatus::ShedDeadline, now);
                    it = rank.active.erase(it);
                } else {
                    ++it;
                }
            }
            if (!rank.hasWork()) {
                continue;
            }
        }
        if (!admitPrefill(rank, streams) && !rank.active.empty()) {
            runDecodeStep(rank, streams);
        }
    }

    for (const RankState& rank : ranks) {
        rankFreeAt_[rank.rank] = rank.freeAt;
    }
}

std::vector<StreamResult>
TokenEngine::run()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Stream> streams;
    streams.reserve(queued_.size());
    for (TokenRequest& req : queued_) {
        Stream stream;
        stream.req = std::move(req);
        stream.result.id = nextStream_++;
        stream.result.arrivalSeconds = stream.req.arrivalSeconds;
        streams.push_back(std::move(stream));
    }
    queued_.clear();

    runLocked(streams);

    std::vector<StreamResult> results;
    results.reserve(streams.size());
    for (Stream& stream : streams) {
        LOCALUT_ASSERT(stream.done, "stream left unserved");
        results.push_back(std::move(stream.result));
    }
    return results;
}

std::vector<StepTrace>
TokenEngine::stepTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return traces_;
}

InferenceReport
TokenEngine::aggregateReport() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return aggregate_;
}

} // namespace localut
