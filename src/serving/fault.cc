#include "serving/fault.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace localut {

namespace {

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/// Deterministic hash of (seed, a, b, c) — thread/interleaving independent.
std::uint64_t
faultHash(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
          std::uint64_t c)
{
    std::uint64_t h = mix64(seed + kGolden);
    h = mix64(h + kGolden + a);
    h = mix64(h + kGolden + b);
    h = mix64(h + kGolden + c);
    return h;
}

} // namespace

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::TransientExecute:
        return "transient_execute";
    case FaultKind::RankDeath:
        return "rank_death";
    case FaultKind::LinkDegrade:
        return "link_degrade";
    case FaultKind::BroadcastCorrupt:
        return "broadcast_corrupt";
    }
    return "unknown";
}

const char*
rankHealthName(RankHealth health)
{
    switch (health) {
    case RankHealth::Healthy:
        return "healthy";
    case RankHealth::Quarantined:
        return "quarantined";
    case RankHealth::Dead:
        return "dead";
    }
    return "unknown";
}

FaultPlan&
FaultPlan::transientExecute(double rate, unsigned rank)
{
    FaultSpec spec;
    spec.kind = FaultKind::TransientExecute;
    spec.rank = rank;
    spec.rate = rate;
    specs.push_back(spec);
    return *this;
}

FaultPlan&
FaultPlan::rankDeath(unsigned rank, double atSeconds)
{
    FaultSpec spec;
    spec.kind = FaultKind::RankDeath;
    spec.rank = rank;
    spec.atSeconds = atSeconds;
    specs.push_back(spec);
    return *this;
}

FaultPlan&
FaultPlan::linkDegrade(unsigned node, double factor, double atSeconds)
{
    FaultSpec spec;
    spec.kind = FaultKind::LinkDegrade;
    spec.node = node;
    spec.factor = factor;
    spec.atSeconds = atSeconds;
    specs.push_back(spec);
    return *this;
}

FaultPlan&
FaultPlan::broadcastCorrupt(double rate)
{
    FaultSpec spec;
    spec.kind = FaultKind::BroadcastCorrupt;
    spec.rate = rate;
    specs.push_back(spec);
    return *this;
}

FaultInjector::FaultInjector(FaultPlan plan, Topology topology)
    : plan_(std::move(plan)), topo_(topology)
{
    const unsigned ranks = topo_.totalRanks();
    LOCALUT_REQUIRE(ranks >= 1, "FaultInjector needs at least one rank");
    transientRate_.assign(ranks, 0.0);
    health_ = std::make_unique<std::atomic<std::uint8_t>[]>(ranks);
    failures_ = std::make_unique<std::atomic<std::uint64_t>[]>(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
        health_[r].store(static_cast<std::uint8_t>(RankHealth::Healthy),
                         std::memory_order_relaxed);
        failures_[r].store(0, std::memory_order_relaxed);
    }
    const unsigned nodes = std::max(1u, topo_.nodes);
    linkFactor_ = std::make_unique<std::atomic<double>[]>(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        linkFactor_[n].store(1.0, std::memory_order_relaxed);
    }

    for (const FaultSpec& spec : plan_.specs) {
        switch (spec.kind) {
        case FaultKind::TransientExecute:
            LOCALUT_REQUIRE(spec.rate >= 0.0 && spec.rate <= 1.0,
                            "transient fault rate must be in [0, 1]");
            if (spec.rank == FaultSpec::kAnyRank) {
                for (unsigned r = 0; r < ranks; ++r) {
                    transientRate_[r] =
                        std::min(1.0, transientRate_[r] + spec.rate);
                }
            } else {
                LOCALUT_REQUIRE(spec.rank < ranks,
                                "transient fault rank out of range");
                transientRate_[spec.rank] =
                    std::min(1.0, transientRate_[spec.rank] + spec.rate);
            }
            break;
        case FaultKind::BroadcastCorrupt:
            LOCALUT_REQUIRE(spec.rate >= 0.0 && spec.rate <= 1.0,
                            "broadcast corruption rate must be in [0, 1]");
            corruptRate_ = std::min(1.0, corruptRate_ + spec.rate);
            break;
        case FaultKind::RankDeath:
            LOCALUT_REQUIRE(spec.rank < ranks,
                            "rank death target out of range");
            scheduled_.push_back({spec, false});
            break;
        case FaultKind::LinkDegrade:
            LOCALUT_REQUIRE(spec.node < nodes,
                            "link degrade node out of range");
            LOCALUT_REQUIRE(spec.factor >= 1.0,
                            "link degrade factor must be >= 1");
            scheduled_.push_back({spec, false});
            break;
        }
    }
    std::stable_sort(scheduled_.begin(), scheduled_.end(),
                     [](const Scheduled& a, const Scheduled& b) {
                         return a.spec.atSeconds < b.spec.atSeconds;
                     });
}

bool
FaultInjector::decide(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                      double rate) const
{
    if (rate <= 0.0) {
        return false;
    }
    if (rate >= 1.0) {
        return true;
    }
    const std::uint64_t h = faultHash(plan_.seed, a, b, c);
    // Compare against rate * 2^64 without overflowing: scale the hash
    // down into [0, 1) instead.
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < rate;
}

bool
FaultInjector::executeFails(std::uint64_t requestId, unsigned attempt,
                            unsigned rank, std::uint64_t salt)
{
    const unsigned ranks = topo_.totalRanks();
    const double rate = transientRate_[rank % ranks];
    const std::uint64_t unit = (salt << 32) | rank;
    if (decide(requestId, attempt, unit, rate)) {
        transientFaults_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
FaultInjector::broadcastCorrupted(std::uint64_t payloadId, unsigned attempt)
{
    if (decide(payloadId, attempt, 0x6c75742d62636173ULL, corruptRate_)) {
        corruptedBroadcasts_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

std::vector<std::function<void(unsigned)>>
FaultInjector::markDeadLocked(unsigned rank)
{
    const auto dead = static_cast<std::uint8_t>(RankHealth::Dead);
    if (health_[rank].exchange(dead, std::memory_order_acq_rel) == dead) {
        return {};
    }
    return listeners_;
}

void
FaultInjector::advanceTo(double seconds)
{
    std::vector<std::pair<std::function<void(unsigned)>, unsigned>> fire;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        clock_ = std::max(clock_, seconds);
        for (Scheduled& event : scheduled_) {
            if (event.fired || event.spec.atSeconds > clock_) {
                continue;
            }
            event.fired = true;
            if (event.spec.kind == FaultKind::RankDeath) {
                for (auto& listener : markDeadLocked(event.spec.rank)) {
                    fire.emplace_back(listener, event.spec.rank);
                }
            } else if (event.spec.kind == FaultKind::LinkDegrade) {
                linkFactor_[event.spec.node].store(
                    event.spec.factor, std::memory_order_relaxed);
                linkDegrades_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
    for (auto& [listener, rank] : fire) {
        listener(rank);
    }
}

double
FaultInjector::clockSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return clock_;
}

RankHealth
FaultInjector::health(unsigned rank) const
{
    const unsigned ranks = topo_.totalRanks();
    return static_cast<RankHealth>(
        health_[rank % ranks].load(std::memory_order_acquire));
}

std::vector<unsigned>
FaultInjector::schedulableRanks() const
{
    std::vector<unsigned> alive;
    for (unsigned r = 0; r < topo_.totalRanks(); ++r) {
        if (schedulable(r)) {
            alive.push_back(r);
        }
    }
    return alive;
}

unsigned
FaultInjector::aliveCount() const
{
    unsigned alive = 0;
    for (unsigned r = 0; r < topo_.totalRanks(); ++r) {
        alive += schedulable(r) ? 1u : 0u;
    }
    return alive;
}

double
FaultInjector::capacityRatio() const
{
    return static_cast<double>(aliveCount()) /
           static_cast<double>(topo_.totalRanks());
}

unsigned
FaultInjector::firstSchedulable(unsigned from) const
{
    const unsigned ranks = topo_.totalRanks();
    for (unsigned i = 0; i < ranks; ++i) {
        const unsigned rank = (from + i) % ranks;
        if (schedulable(rank)) {
            return rank;
        }
    }
    return kNoRank;
}

double
FaultInjector::linkFactor(unsigned node) const
{
    const unsigned nodes = std::max(1u, topo_.nodes);
    return linkFactor_[node % nodes].load(std::memory_order_relaxed);
}

void
FaultInjector::killRank(unsigned rank)
{
    LOCALUT_REQUIRE(rank < topo_.totalRanks(),
                    "killRank target out of range");
    std::vector<std::function<void(unsigned)>> listeners;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        listeners = markDeadLocked(rank);
    }
    for (auto& listener : listeners) {
        listener(rank);
    }
}

void
FaultInjector::recordFailure(unsigned rank, std::uint64_t quarantineThreshold)
{
    const unsigned ranks = topo_.totalRanks();
    rank %= ranks;
    const std::uint64_t count =
        failures_[rank].fetch_add(1, std::memory_order_acq_rel) + 1;
    if (quarantineThreshold == 0 || count < quarantineThreshold) {
        return;
    }
    auto expected = static_cast<std::uint8_t>(RankHealth::Healthy);
    const auto quarantined =
        static_cast<std::uint8_t>(RankHealth::Quarantined);
    if (health_[rank].compare_exchange_strong(expected, quarantined,
                                              std::memory_order_acq_rel)) {
        quarantines_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
FaultInjector::onRankLoss(std::function<void(unsigned)> listener)
{
    std::lock_guard<std::mutex> lock(mutex_);
    listeners_.push_back(std::move(listener));
}

void
FaultInjector::noteRetries(std::uint64_t count)
{
    retries_.fetch_add(count, std::memory_order_relaxed);
}

void
FaultInjector::noteBackoff(double seconds)
{
    backoffSeconds_.fetch_add(seconds, std::memory_order_relaxed);
}

void
FaultInjector::noteFailover()
{
    failovers_.fetch_add(1, std::memory_order_relaxed);
}

void
FaultInjector::noteShedFault()
{
    shedFault_.fetch_add(1, std::memory_order_relaxed);
}

void
FaultInjector::noteResend()
{
    resends_.fetch_add(1, std::memory_order_relaxed);
}

FaultStats
FaultInjector::stats() const
{
    FaultStats out;
    out.transientFaults = transientFaults_.load(std::memory_order_relaxed);
    out.retries = retries_.load(std::memory_order_relaxed);
    out.corruptedBroadcasts =
        corruptedBroadcasts_.load(std::memory_order_relaxed);
    out.resends = resends_.load(std::memory_order_relaxed);
    out.quarantines = quarantines_.load(std::memory_order_relaxed);
    out.failovers = failovers_.load(std::memory_order_relaxed);
    out.shedFault = shedFault_.load(std::memory_order_relaxed);
    out.linkDegrades = linkDegrades_.load(std::memory_order_relaxed);
    out.backoffSeconds = backoffSeconds_.load(std::memory_order_relaxed);
    for (unsigned r = 0; r < topo_.totalRanks(); ++r) {
        switch (health(r)) {
        case RankHealth::Dead:
            ++out.ranksDead;
            break;
        case RankHealth::Quarantined:
            ++out.ranksQuarantined;
            break;
        case RankHealth::Healthy:
            break;
        }
    }
    return out;
}

} // namespace localut
