#include "serving/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace localut {

const char*
deadlineClassName(DeadlineClass lane)
{
    switch (lane) {
      case DeadlineClass::Interactive: return "interactive";
      case DeadlineClass::Batch:       return "batch";
      case DeadlineClass::Prefill:     return "prefill";
      case DeadlineClass::Decode:      return "decode";
    }
    LOCALUT_PANIC("invalid deadline class");
}

unsigned
deadlineClassPriority(DeadlineClass lane)
{
    switch (lane) {
      case DeadlineClass::Decode:      return 0;
      case DeadlineClass::Interactive: return 1;
      case DeadlineClass::Prefill:     return 2;
      case DeadlineClass::Batch:       return 3;
    }
    LOCALUT_PANIC("invalid deadline class");
}

const char*
admissionOutcomeName(AdmissionOutcome outcome)
{
    switch (outcome) {
      case AdmissionOutcome::Admitted:          return "admitted";
      case AdmissionOutcome::ShedDeadline:      return "shed_deadline";
      case AdmissionOutcome::RejectedSaturated: return "rejected_saturated";
      case AdmissionOutcome::ShedFault:         return "shed_fault";
    }
    LOCALUT_PANIC("invalid admission outcome");
}

// ------------------------------------------------------ LatencyHistogram

double
LatencyHistogram::bucketUpperBound(std::size_t index)
{
    if (index + 1 >= kBuckets) {
        return std::numeric_limits<double>::infinity();
    }
    // Bucket i covers (bound(i-1), bound(i)] with bound(i) =
    // kMinSeconds * 10^((i+1)/kBucketsPerDecade).
    return kMinSeconds *
           std::pow(10.0, static_cast<double>(index + 1) /
                              static_cast<double>(kBucketsPerDecade));
}

std::size_t
LatencyHistogram::bucketIndex(double seconds)
{
    if (!(seconds > kMinSeconds)) {
        return 0;
    }
    if (seconds >= kMaxSeconds) {
        return kBuckets - 1;
    }
    const double decades = std::log10(seconds / kMinSeconds);
    // ceil - 1: find the first bucket whose upper bound >= seconds.
    auto index = static_cast<std::size_t>(std::ceil(
                     decades * static_cast<double>(kBucketsPerDecade))) -
                 1;
    // Guard the float boundary cases on exact powers of the growth step.
    while (index > 0 && bucketUpperBound(index - 1) >= seconds) {
        --index;
    }
    while (index + 1 < kBuckets && bucketUpperBound(index) < seconds) {
        ++index;
    }
    return index;
}

void
LatencyHistogram::record(double seconds)
{
    seconds = std::max(0.0, seconds);
    ++counts_[bucketIndex(seconds)];
    if (count_ == 0 || seconds < min_) {
        min_ = seconds;
    }
    max_ = std::max(max_, seconds);
    sum_ += seconds;
    ++count_;
}

double
LatencyHistogram::meanSeconds() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            return std::min(bucketUpperBound(i), max_);
        }
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    if (other.count_ == 0) {
        return;
    }
    for (std::size_t i = 0; i < kBuckets; ++i) {
        counts_[i] += other.counts_[i];
    }
    if (count_ == 0 || other.min_ < min_) {
        min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

std::uint64_t
LatencyHistogram::bucketCount(std::size_t index) const
{
    LOCALUT_REQUIRE(index < kBuckets, "histogram bucket out of range");
    return counts_[index];
}

// ------------------------------------------------------------- Telemetry

std::uint64_t
TelemetrySnapshot::totalSubmitted() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t n : submitted) {
        total += n;
    }
    return total;
}

std::uint64_t
TelemetrySnapshot::totalAdmitted() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t n : admitted) {
        total += n;
    }
    return total;
}

void
Telemetry::recordAdmission(DeadlineClass lane, AdmissionOutcome outcome)
{
    const auto at = static_cast<std::size_t>(lane);
    std::lock_guard<std::mutex> lock(mutex_);
    ++state_.submitted[at];
    switch (outcome) {
      case AdmissionOutcome::Admitted:
        ++state_.admitted[at];
        break;
      case AdmissionOutcome::ShedDeadline:
        ++state_.shedDeadline[at];
        break;
      case AdmissionOutcome::RejectedSaturated:
        ++state_.rejectedSaturated[at];
        break;
      case AdmissionOutcome::ShedFault:
        ++state_.shedFault[at];
        break;
    }
}

void
Telemetry::recordCompletion(const RequestSample& sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    LaneStats& lane = state_.lanes[static_cast<std::size_t>(sample.lane)];
    lane.latency.record(sample.latencySeconds());
    lane.queueDelay.record(sample.queueDelaySeconds());
    lane.service.record(sample.serviceSeconds);
    ++lane.completed;
    if (std::isinf(sample.deadlineSeconds)) {
        // No deadline: counts as met for goodput purposes.
        ++lane.deadlineMet;
    } else if (sample.deadlineMet()) {
        ++lane.deadlineMet;
    } else {
        ++lane.deadlineMissed;
    }
    state_.collectiveSeconds += sample.collectiveSeconds;
    state_.lutBroadcastSeconds += sample.lutBroadcastSeconds;
}

void
Telemetry::recordTtft(DeadlineClass lane, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.lanes[static_cast<std::size_t>(lane)].ttft.record(seconds);
}

void
Telemetry::recordToken(DeadlineClass lane, double gapSeconds,
                       bool metDeadline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    LaneStats& stats = state_.lanes[static_cast<std::size_t>(lane)];
    if (gapSeconds >= 0) {
        stats.interToken.record(gapSeconds);
    }
    ++stats.tokens;
    if (metDeadline) {
        ++stats.tokensMet;
    } else {
        ++stats.tokensMissed;
    }
}

void
Telemetry::recordKvResidency(const KvResidencyGauges& gauges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.kv = gauges;
}

void
Telemetry::recordPlacement(unsigned node)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_.nodeRequests.size() <= node) {
        state_.nodeRequests.resize(node + 1, 0);
    }
    ++state_.nodeRequests[node];
}

void
Telemetry::recordNodeResidency(std::vector<NodeResidencyGauge> nodes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.nodeResidency = std::move(nodes);
}

void
Telemetry::recordBroadcastTiers(const BroadcastTierBytes& tiers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.broadcastTiers = tiers;
}

void
Telemetry::recordFaults(const FaultCounters& faults)
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.faults = faults;
}

void
Telemetry::recordPostAdmitFaultShed(const RequestSample& sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto at = static_cast<std::size_t>(sample.lane);
    ++state_.shedFault[at];
    // The sequencer optimistically recorded this request as completed
    // (recordCompletion at virtual-time sequencing); the shed retracts
    // those counters so goodput never credits a request that faulted
    // out during execution.
    LaneStats& lane = state_.lanes[at];
    if (lane.completed > 0) {
        --lane.completed;
        if (std::isinf(sample.deadlineSeconds) || sample.deadlineMet()) {
            --lane.deadlineMet;
        } else {
            --lane.deadlineMissed;
        }
    }
}

TelemetrySnapshot
Telemetry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

void
Telemetry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = TelemetrySnapshot{};
}

namespace {

void
appendf(std::string& out, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendf(std::string& out, const char* fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (n > 0) {
        out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                              sizeof buf - 1));
    }
}

/** Emits one per-lane histogram as cumulative Prometheus series. */
void
appendHistogram(std::string& out, const char* name, const char* lane,
                const LatencyHistogram& hist)
{
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        const std::uint64_t n = hist.bucketCount(i);
        if (n == 0) {
            continue; // sparse dump: only buckets that gained samples
        }
        cumulative += n;
        const double bound = LatencyHistogram::bucketUpperBound(i);
        if (std::isinf(bound)) {
            continue; // folded into the +Inf line below
        }
        appendf(out, "%s_bucket{lane=\"%s\",le=\"%.6e\"} %llu\n", name,
                lane, bound, static_cast<unsigned long long>(cumulative));
    }
    appendf(out, "%s_bucket{lane=\"%s\",le=\"+Inf\"} %llu\n", name, lane,
            static_cast<unsigned long long>(hist.count()));
    appendf(out, "%s_sum{lane=\"%s\"} %.9e\n", name, lane, hist.sum());
    appendf(out, "%s_count{lane=\"%s\"} %llu\n", name, lane,
            static_cast<unsigned long long>(hist.count()));
}

} // namespace

std::string
Telemetry::prometheusText() const
{
    const TelemetrySnapshot snap = snapshot();
    std::string out;
    out.reserve(4096);

    out += "# HELP localut_requests_total Requests by lane and admission "
           "outcome.\n# TYPE localut_requests_total counter\n";
    for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
        const char* name =
            deadlineClassName(static_cast<DeadlineClass>(lane));
        const struct {
            const char* outcome;
            std::uint64_t value;
        } rows[] = {
            {"admitted", snap.admitted[lane]},
            {"shed_deadline", snap.shedDeadline[lane]},
            {"rejected_saturated", snap.rejectedSaturated[lane]},
            {"shed_fault", snap.shedFault[lane]},
        };
        for (const auto& row : rows) {
            appendf(out,
                    "localut_requests_total{lane=\"%s\",outcome=\"%s\"} "
                    "%llu\n",
                    name, row.outcome,
                    static_cast<unsigned long long>(row.value));
        }
    }

    out += "# HELP localut_deadline_total Completions by lane and "
           "deadline verdict.\n# TYPE localut_deadline_total counter\n";
    for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
        const char* name =
            deadlineClassName(static_cast<DeadlineClass>(lane));
        appendf(out,
                "localut_deadline_total{lane=\"%s\",verdict=\"met\"} "
                "%llu\n",
                name,
                static_cast<unsigned long long>(
                    snap.lanes[lane].deadlineMet));
        appendf(out,
                "localut_deadline_total{lane=\"%s\",verdict=\"missed\"} "
                "%llu\n",
                name,
                static_cast<unsigned long long>(
                    snap.lanes[lane].deadlineMissed));
    }

    const struct {
        const char* name;
        const char* help;
        const LatencyHistogram LaneStats::*member;
    } hists[] = {
        {"localut_request_latency_seconds",
         "End-to-end modeled request latency.", &LaneStats::latency},
        {"localut_request_queue_delay_seconds",
         "Modeled queue delay before execution.", &LaneStats::queueDelay},
        {"localut_request_service_seconds",
         "Modeled service time on the placed rank.", &LaneStats::service},
        {"localut_ttft_seconds",
         "Modeled time to first token (arrival to prefill completion).",
         &LaneStats::ttft},
        {"localut_inter_token_seconds",
         "Modeled gap between consecutive decode tokens of a stream.",
         &LaneStats::interToken},
    };
    for (const auto& h : hists) {
        appendf(out, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help,
                h.name);
        for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
            appendHistogram(
                out, h.name,
                deadlineClassName(static_cast<DeadlineClass>(lane)),
                snap.lanes[lane].*(h.member));
        }
    }

    out += "# HELP localut_tokens_total Decode tokens emitted by lane "
           "and deadline verdict.\n# TYPE localut_tokens_total counter\n";
    for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
        const char* name =
            deadlineClassName(static_cast<DeadlineClass>(lane));
        appendf(out,
                "localut_tokens_total{lane=\"%s\",verdict=\"met\"} %llu\n",
                name,
                static_cast<unsigned long long>(snap.lanes[lane].tokensMet));
        appendf(out,
                "localut_tokens_total{lane=\"%s\",verdict=\"missed\"} "
                "%llu\n",
                name,
                static_cast<unsigned long long>(
                    snap.lanes[lane].tokensMissed));
    }

    const struct {
        const char* name;
        const char* help;
        const char* type;
        std::uint64_t value;
    } kvRows[] = {
        {"localut_kv_resident_bytes",
         "Raw KV-cache bytes currently MRAM-resident.", "gauge",
         snap.kv.residentBytes},
        {"localut_kv_streams", "KV streams currently MRAM-resident.",
         "gauge", snap.kv.streams},
        {"localut_kv_spills_total",
         "KV streams spilled PIM to host under capacity pressure.",
         "counter", snap.kv.spills},
        {"localut_kv_refills_total",
         "Spilled KV streams transferred back host to PIM.", "counter",
         snap.kv.refills},
        {"localut_kv_sheds_total",
         "Streams shed because their KV alone exceeds the rank budget.",
         "counter", snap.kv.sheds},
    };
    for (const auto& row : kvRows) {
        appendf(out, "# HELP %s %s\n# TYPE %s %s\n%s %llu\n", row.name,
                row.help, row.name, row.type, row.name,
                static_cast<unsigned long long>(row.value));
    }
    out += "# HELP localut_evictions_total Residency evictions by "
           "resource class.\n# TYPE localut_evictions_total counter\n";
    appendf(out, "localut_evictions_total{class=\"lut\"} %llu\n",
            static_cast<unsigned long long>(snap.kv.lutEvictions));
    appendf(out, "localut_evictions_total{class=\"kv\"} %llu\n",
            static_cast<unsigned long long>(snap.kv.spills));

    if (!snap.nodeRequests.empty()) {
        out += "# HELP localut_node_requests_total Requests placed per "
               "topology node.\n# TYPE localut_node_requests_total "
               "counter\n";
        for (std::size_t node = 0; node < snap.nodeRequests.size();
             ++node) {
            appendf(out, "localut_node_requests_total{node=\"%zu\"} %llu\n",
                    node,
                    static_cast<unsigned long long>(
                        snap.nodeRequests[node]));
        }
    }
    if (!snap.nodeResidency.empty()) {
        out += "# HELP localut_node_lut_resident_bytes LUT table-set "
               "bytes resident per topology node.\n"
               "# TYPE localut_node_lut_resident_bytes gauge\n";
        for (std::size_t node = 0; node < snap.nodeResidency.size();
             ++node) {
            appendf(out,
                    "localut_node_lut_resident_bytes{node=\"%zu\"} %llu\n",
                    node,
                    static_cast<unsigned long long>(
                        snap.nodeResidency[node].lutBytes));
        }
        out += "# HELP localut_node_kv_resident_bytes Raw KV bytes "
               "resident per topology node.\n"
               "# TYPE localut_node_kv_resident_bytes gauge\n";
        for (std::size_t node = 0; node < snap.nodeResidency.size();
             ++node) {
            appendf(out,
                    "localut_node_kv_resident_bytes{node=\"%zu\"} %llu\n",
                    node,
                    static_cast<unsigned long long>(
                        snap.nodeResidency[node].kvBytes));
        }
    }

    out += "# HELP localut_broadcast_bytes_total LUT broadcast bytes by "
           "link tier (intra-node host link vs inter-node CXL hop) and "
           "kind (raw vs compressed on the wire).\n"
           "# TYPE localut_broadcast_bytes_total counter\n";
    // Intra-node broadcasts are never coded, so raw == compressed there;
    // the inter-node pair exposes the measured codec ratio.
    appendf(out,
            "localut_broadcast_bytes_total{tier=\"intra\",kind=\"raw\"} "
            "%.9e\n",
            snap.broadcastTiers.intraBytes);
    appendf(out,
            "localut_broadcast_bytes_total{tier=\"intra\","
            "kind=\"compressed\"} %.9e\n",
            snap.broadcastTiers.intraBytes);
    appendf(out,
            "localut_broadcast_bytes_total{tier=\"inter\",kind=\"raw\"} "
            "%.9e\n",
            snap.broadcastTiers.interRawBytes);
    appendf(out,
            "localut_broadcast_bytes_total{tier=\"inter\","
            "kind=\"compressed\"} %.9e\n",
            snap.broadcastTiers.interBytes);

    out += "# HELP localut_faults_total Injected faults by kind.\n"
           "# TYPE localut_faults_total counter\n";
    appendf(out, "localut_faults_total{kind=\"transient_execute\"} %llu\n",
            static_cast<unsigned long long>(snap.faults.transientFaults));
    appendf(out, "localut_faults_total{kind=\"broadcast_corrupt\"} %llu\n",
            static_cast<unsigned long long>(snap.faults.corruptedBroadcasts));
    appendf(out, "localut_faults_total{kind=\"link_degrade\"} %llu\n",
            static_cast<unsigned long long>(snap.faults.linkDegrades));
    const struct {
        const char* name;
        const char* help;
        const char* type;
        std::uint64_t value;
    } faultRows[] = {
        {"localut_fault_retries_total",
         "Execute attempts retried after an injected transient fault.",
         "counter", snap.faults.retries},
        {"localut_broadcast_resends_total",
         "LUT broadcasts re-sent after checksum-detected corruption.",
         "counter", snap.faults.resends},
        {"localut_quarantines_total",
         "Ranks quarantined after crossing the failure threshold.",
         "counter", snap.faults.quarantines},
        {"localut_failovers_total",
         "Requests re-homed or GEMMs re-sharded around lost ranks.",
         "counter", snap.faults.failovers},
        {"localut_fault_sheds_total",
         "Requests shed because faults left no capacity for them.",
         "counter", snap.faults.shedFault},
        {"localut_ranks_dead", "Ranks currently dead.", "gauge",
         snap.faults.ranksDead},
        {"localut_ranks_quarantined", "Ranks currently quarantined.",
         "gauge", snap.faults.ranksQuarantined},
    };
    for (const auto& row : faultRows) {
        appendf(out, "# HELP %s %s\n# TYPE %s %s\n%s %llu\n", row.name,
                row.help, row.name, row.type, row.name,
                static_cast<unsigned long long>(row.value));
    }
    out += "# HELP localut_fault_backoff_seconds_total Virtual retry "
           "backoff charged into request timing.\n"
           "# TYPE localut_fault_backoff_seconds_total counter\n";
    appendf(out, "localut_fault_backoff_seconds_total %.9e\n",
            snap.faults.backoffSeconds);
    out += "# HELP localut_capacity_ratio Schedulable ranks divided by "
           "total ranks (degraded-capacity gauge).\n"
           "# TYPE localut_capacity_ratio gauge\n";
    appendf(out, "localut_capacity_ratio %.6f\n",
            snap.faults.capacityRatio);

    out += "# HELP localut_collective_seconds_total Modeled collective "
           "transfer seconds across completions.\n"
           "# TYPE localut_collective_seconds_total counter\n";
    appendf(out, "localut_collective_seconds_total %.9e\n",
            snap.collectiveSeconds);
    out += "# HELP localut_lut_broadcast_seconds_total Projected LUT "
           "broadcast seconds across completions.\n"
           "# TYPE localut_lut_broadcast_seconds_total counter\n";
    appendf(out, "localut_lut_broadcast_seconds_total %.9e\n",
            snap.lutBroadcastSeconds);
    return out;
}

} // namespace localut
