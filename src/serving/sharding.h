#ifndef LOCALUT_SERVING_SHARDING_H_
#define LOCALUT_SERVING_SHARDING_H_

/**
 * @file
 * The sharded execution layer: a ShardPlan partitions one GemmProblem
 * across N logical PIM ranks, so the shards execute concurrently (each on
 * its own rank of the device model) and a deterministic reduction
 * assembles the result:
 *
 *  - ColumnParallel splits the output dimension M (the Megatron-style
 *    column tensor-parallel cut for FFN/QKV weights).  Shard boundaries
 *    respect an alignment, so aligning QKV shards to the attention head
 *    size makes the same cut head-parallel for attention.  The reduction
 *    is an all-gather: ranks contribute disjoint output slices, so the
 *    assembled result is bit-exact against the unsharded execution by
 *    construction.
 *  - RowParallel splits the reduction dimension K; every rank produces a
 *    full MxN partial-sum matrix and the host reduces them in rank order.
 *    Integer partial sums are associative, so this is also bit-exact —
 *    and therefore RowParallel is restricted to integer configurations
 *    (floating-point accumulation order would diverge).
 *
 * The collective hop (all-gather or reduce) is charged explicitly: each
 * rank drains its slice out of its DRAM banks (dram/timing's
 * collectiveDrainCost) and the host link moves the aggregated bytes; the
 * slower of the two paces the transfer, on top of one bulk-launch
 * latency.  Backends expose their own numbers via
 * Backend::collectiveProfile().
 */

#include <cstddef>
#include <vector>

#include "backend/backend.h"
#include "common/topology.h"
#include "kernels/exec_engine.h"
#include "nn/workload.h"

namespace localut {

class PlanCache;

/** How a GEMM is cut across ranks. */
enum class ShardStrategy {
    ColumnParallel, ///< split M (output rows); reduction is an all-gather
    RowParallel,    ///< split K (depth); reduction sums int32 partials
};

/** Strategy name for reports ("column-parallel" / "row-parallel"). */
const char* shardStrategyName(ShardStrategy strategy);

/** Everything that determines a sharded cut (part of the PlanKey). */
struct ShardSpec {
    unsigned numRanks = 1; ///< logical PIM ranks *per node* (1 = unsharded)
    ShardStrategy strategy = ShardStrategy::ColumnParallel;
    /**
     * Shard boundaries land on multiples of this (e.g. the attention
     * head size for QKV projections — head-parallel attention).
     */
    std::size_t align = 1;
    /**
     * CXL/PCIe-attached PIM nodes the cut spans.  Shards are dealt
     * across numNodes * numRanks flat ranks (node-major); the
     * collective then gathers intra-node over each node's host link and
     * hops the remote nodes' bytes over the inter-node tier.  1 keeps
     * the flat single-host model (and its exact costs).
     */
    unsigned numNodes = 1;

    bool operator==(const ShardSpec&) const = default; ///< field-wise

    /** True when this spec actually cuts the GEMM (> 1 flat rank). */
    bool sharded() const { return totalRanks() > 1; }

    /** Flat ranks across the whole node x rank grid. */
    unsigned totalRanks() const
    {
        return numRanks * (numNodes ? numNodes : 1);
    }

    /** The node x ranks-per-node grid this spec shards over. */
    Topology topology() const
    {
        return {numNodes ? numNodes : 1, numRanks};
    }
};

/** One rank's slice of a sharded GEMM, bound to its execution plan. */
struct GemmShard {
    unsigned rank = 0; ///< logical rank this slice executes on
    /** Row range (ColumnParallel) or depth range (RowParallel). */
    std::size_t begin = 0, end = 0;
    GemmPlan plan; ///< the slice's execution plan

    /** Slice length along the shard axis. */
    std::size_t extent() const { return end - begin; }
};

/**
 * A GemmProblem partitioned across ranks: per-shard plans plus the
 * explicit cost of the reduction collective.  Build via makeShardPlan()
 * (or memoized through PlanCache::shardPlanFor()).
 */
struct ShardPlan {
    ShardSpec spec;  ///< the cut this plan realizes
    DesignPoint design = DesignPoint::LoCaLut; ///< design point
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()}; ///< quantization
    std::size_t m = 0, k = 0, n = 0; ///< the whole GEMM's shape
    std::vector<GemmShard> shards; ///< never empty; 1 entry = unsharded

    // Reduction collective (all zero when a single shard covers the GEMM).
    double collectiveBytes = 0;   ///< bytes drained rank -> host (intra tier)
    double collectiveSeconds = 0; ///< both hops: intra gather + inter-node
    double collectiveJoules = 0;  ///< drain + both tiers' transfer energy
    double hostReduceOps = 0;     ///< RowParallel host partial-sum adds
    double hostReduceSeconds = 0; ///< modeled time of those adds
    // Inter-node hop share (zero on a single-node topology).
    double interNodeBytes = 0;   ///< bytes crossing the CXL inter-node tier
    double interNodeSeconds = 0; ///< that hop's share of collectiveSeconds

    /** Ranks the cut actually produced shards for. */
    unsigned ranksUsed() const
    {
        return static_cast<unsigned>(shards.size());
    }

    /** Modeled seconds: slowest shard (they run concurrently) +
     * collective + the RowParallel host reduce. */
    double predictedSeconds() const;
};

/**
 * Partitions @p problem across @p spec.numRanks ranks under @p design and
 * plans every shard (through @p cache when given, so repeated shapes
 * reuse sub-plans).  Degenerate dimensions produce fewer shards than
 * ranks; numRanks = 1 reduces to the unsharded plan with zero collective
 * cost.
 */
ShardPlan makeShardPlan(const Backend& backend, const GemmProblem& problem,
                        DesignPoint design, const ShardSpec& spec,
                        const PlanOverrides& overrides = {},
                        PlanCache* cache = nullptr);

/**
 * The sub-problem shard @p shardIndex executes: the W/A slice described
 * by the shard's range (codes are sliced when the problem carries them;
 * shape-only problems stay shape-only).
 */
GemmProblem shardProblem(const GemmProblem& problem, const ShardPlan& plan,
                         unsigned shardIndex);

/**
 * Deterministic reduction of per-shard results (one per shard, in shard
 * order): values are assembled in shard-index order (concatenation for
 * ColumnParallel, int32 partial-sum addition for RowParallel), timing
 * takes the critical (slowest) shard — shards run concurrently on
 * distinct ranks — plus the collective, and energy/event costs sum
 * across ranks.
 */
GemmResult reduceShardResults(const Backend& backend, const ShardPlan& plan,
                              std::vector<GemmResult> parts);

/**
 * Executes every shard on the calling thread and reduces.  The
 * InferenceSession's per-rank work queues provide the concurrent path;
 * this is the sequential reference both must match bit-exactly.
 */
GemmResult executeSharded(const Backend& backend,
                          const GemmProblem& problem, const ShardPlan& plan,
                          bool computeValues = true);

/**
 * executeSharded() under explicit execution options.  options.prepared
 * is ignored (a whole-problem operand cannot serve the slices); pass
 * @p cache to fetch/populate per-shard prepared operands instead —
 * exactly what a sharded serving loop reuses across decode steps.
 * @p overrides must be the PlanOverrides the shard plan was cut with
 * (they are part of the prepared-operand cache key).
 */
GemmResult executeSharded(const Backend& backend,
                          const GemmProblem& problem, const ShardPlan& plan,
                          const ExecOptions& options,
                          PlanCache* cache = nullptr,
                          const PlanOverrides& overrides = {});

/** A workload GEMM bound to its sharded execution plan. */
struct ShardedGemm {
    WorkloadGemm gemm; ///< the shape + repeat count
    ShardPlan plan;    ///< its rank cut
    /**
     * Pipeline stage / home node of this GEMM.  Tensor-parallel
     * placement leaves 0 (the cut itself spans every node); pipeline-
     * parallel placement assigns whole layers to nodes and this names
     * the node whose local ranks execute the cut.
     */
    unsigned node = 0;
};

/**
 * Sharded counterpart of executeWorkload(): executes every node's shards
 * (timing-only) plus @p hostOps host work and aggregates the report,
 * including the per-node collective transfers.  @p options carries the
 * execution knobs (its computeValues is overridden to false: workload
 * nodes are shape-only).
 */
InferenceReport executeShardedWorkload(const Backend& backend,
                                       const std::vector<ShardedGemm>& nodes,
                                       const QuantConfig& quant,
                                       double hostOps,
                                       const ExecOptions& options = {});

/**
 * Sharded counterpart of projectWorkloadCost() (nn/workload.h): the
 * steady-state per-request cost of executing @p nodes plus @p hostOps
 * host work, with the collective share separated out — exactly
 * executeShardedWorkload()'s timing, without a functional pass.
 */
WorkloadCostProjection
projectShardedWorkloadCost(const Backend& backend,
                           const std::vector<ShardedGemm>& nodes,
                           const QuantConfig& quant, double hostOps);

} // namespace localut

#endif // LOCALUT_SERVING_SHARDING_H_
