#ifndef LOCALUT_SERVING_TELEMETRY_H_
#define LOCALUT_SERVING_TELEMETRY_H_

/**
 * @file
 * Serving telemetry: streaming latency histograms and request counters
 * for the SLO-aware scheduler (serving/scheduler.h).
 *
 * Latencies in this layer are *modeled* (virtual-time) seconds — the
 * same units as every TimingReport in the repository — so the numbers a
 * load test produces are properties of the device model and the
 * scheduling policy, not of the wall clock of the simulating host.  A
 * LatencyHistogram keeps log-spaced buckets (~26% growth over
 * 1 ns..10^4 s), which makes streaming p50/p95/p99 queries O(buckets)
 * and the reported quantile *bounds* stable under sub-bucket model
 * drift — the property tests/test_golden_costs.cc freezes.
 *
 * Telemetry aggregates per-lane (interactive vs batch) histograms of
 * end-to-end latency, queue delay, and service time, admission-outcome
 * counters, deadline hit/miss counters, and accumulated collective /
 * LUT-broadcast seconds.  prometheusText() renders the whole thing in
 * the Prometheus text exposition format, so a serving loop can be
 * scraped (or just printed) without any dependency.
 */

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace localut {

/**
 * The request priority lanes the scheduler serves.  Prefill and Decode
 * are the token engine's disaggregated lanes (serving/token_engine.h):
 * decode steps carry per-token deadlines and outrank everything
 * (a stalled decode stream stalls a live conversation), prefill is a
 * throughput lane slotted between interactive and batch.  Values are
 * appended so Interactive/Batch indices stay stable.
 */
enum class DeadlineClass {
    Interactive, ///< latency-sensitive lane
    Batch,       ///< throughput lane, served when others are idle
    Prefill,     ///< token-engine prompt ingestion (TTFT throughput lane)
    Decode,      ///< token-engine decode steps (per-token deadlines)
};

/** Number of DeadlineClass lanes (array sizing). */
inline constexpr std::size_t kDeadlineClasses = 4;

/** Lane name for reports ("interactive" / "batch" / "prefill" /
 * "decode"). */
const char* deadlineClassName(DeadlineClass lane);

/**
 * Dispatch priority of @p lane (lower serves first): Decode (0) <
 * Interactive (1) < Prefill (2) < Batch (3).  Distinct from the enum's
 * declaration order, which is frozen for index stability.
 */
unsigned deadlineClassPriority(DeadlineClass lane);

/** What the scheduler decided to do with a submitted request. */
enum class AdmissionOutcome {
    Admitted,         ///< placed on a rank; will execute
    ShedDeadline,     ///< shed: the deadline cannot be met (SLO policy)
    RejectedSaturated,///< rejected: every rank queue is at its bound
    ShedFault,        ///< shed: rank faults left no live capacity for it
};

/** Outcome name for reports ("admitted" / "shed_deadline" / ...). */
const char* admissionOutcomeName(AdmissionOutcome outcome);

/**
 * A fixed-bucket streaming latency histogram over modeled seconds.
 * Buckets are log-spaced (kBucketsPerDecade per power of ten) from
 * kMinSeconds up to kMaxSeconds, with one overflow bucket above; the
 * growth factor (~26%) bounds the quantile error.  Not internally
 * locked — Telemetry serializes access.
 */
class LatencyHistogram
{
  public:
    /** Log-bucket resolution: buckets per decade. */
    static constexpr unsigned kBucketsPerDecade = 10;
    /** Lower edge of the first bucket (seconds). */
    static constexpr double kMinSeconds = 1e-9;
    /** Upper edge of the last regular bucket (seconds). */
    static constexpr double kMaxSeconds = 1e4;
    /** Regular buckets (13 decades) plus the overflow bucket. */
    static constexpr std::size_t kBuckets = 13 * kBucketsPerDecade + 1;

    /** Adds one sample of @p seconds (negatives clamp to 0). */
    void record(double seconds);

    /** Samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded samples (seconds). */
    double sum() const { return sum_; }

    /** Smallest recorded sample; 0 when empty. */
    double minSeconds() const { return count_ == 0 ? 0.0 : min_; }

    /** Largest recorded sample; 0 when empty. */
    double maxSeconds() const { return max_; }

    /** Arithmetic mean; 0 when empty. */
    double meanSeconds() const;

    /**
     * Streaming quantile bound for @p q in [0, 1]: the upper edge of the
     * bucket holding the ceil(q * count)-th smallest sample, clamped to
     * the recorded maximum (so quantile(1) == maxSeconds()).  0 when
     * empty.  Monotone in @p q.
     */
    double quantile(double q) const;

    /** quantile(0.50). */
    double p50() const { return quantile(0.50); }
    /** quantile(0.95). */
    double p95() const { return quantile(0.95); }
    /** quantile(0.99). */
    double p99() const { return quantile(0.99); }

    /** Folds every sample of @p other into this histogram. */
    void merge(const LatencyHistogram& other);

    /** Upper edge (seconds) of bucket @p index (+inf for overflow). */
    static double bucketUpperBound(std::size_t index);

    /** Samples in bucket @p index (for dumps and tests). */
    std::uint64_t bucketCount(std::size_t index) const;

  private:
    static std::size_t bucketIndex(double seconds);

    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * One completed (virtually sequenced) request, in modeled seconds.
 * Produced by the scheduler when a request's virtual start time is
 * decided; all fields are deterministic for a deterministic trace.
 */
struct RequestSample {
    std::uint64_t id = 0;             ///< scheduler ticket id
    DeadlineClass lane = DeadlineClass::Interactive; ///< priority lane
    double arrivalSeconds = 0;        ///< virtual arrival time
    double startSeconds = 0;          ///< virtual execution start
    double completionSeconds = 0;     ///< virtual completion
    /** Modeled service time, including any projected cold-start LUT
     * broadcast (completionSeconds - startSeconds). */
    double serviceSeconds = 0;
    /** Absolute virtual deadline; +inf when the request had none. */
    double deadlineSeconds = 0;
    /** Collective (all-gather/reduce) share of the service. */
    double collectiveSeconds = 0;
    /** Projected cold-start LUT broadcast share of the service. */
    double lutBroadcastSeconds = 0;

    /** Virtual seconds spent queued before starting. */
    double queueDelaySeconds() const
    {
        return startSeconds - arrivalSeconds;
    }

    /** End-to-end virtual latency (queue delay + service). */
    double latencySeconds() const
    {
        return completionSeconds - arrivalSeconds;
    }

    /** True when the request completed by its deadline. */
    bool deadlineMet() const
    {
        return completionSeconds <= deadlineSeconds;
    }
};

/** Per-lane aggregate of completed requests. */
struct LaneStats {
    LatencyHistogram latency;    ///< end-to-end latency histogram
    LatencyHistogram queueDelay; ///< queue-delay histogram
    LatencyHistogram service;    ///< service-time histogram
    /** Time-to-first-token histogram (token engine: prefill completion
     * minus arrival; empty on non-token lanes). */
    LatencyHistogram ttft;
    /** Inter-token latency histogram (token engine: gap between
     * consecutive emitted tokens of a stream). */
    LatencyHistogram interToken;
    std::uint64_t completed = 0;     ///< requests sequenced to completion
    std::uint64_t deadlineMet = 0;   ///< completions within the deadline
    std::uint64_t deadlineMissed = 0;///< completions past a finite deadline
    std::uint64_t tokens = 0;        ///< decode tokens emitted on this lane
    std::uint64_t tokensMet = 0;     ///< tokens within their deadline
    std::uint64_t tokensMissed = 0;  ///< tokens past a finite deadline
};

/**
 * A point-in-time copy of the residency manager's KV gauges plus the
 * cross-class eviction split, recorded by the token engine after each
 * step (see ResidencyStats in serving/residency.h for the source
 * counters).
 */
struct KvResidencyGauges {
    std::uint64_t residentBytes = 0; ///< raw KV bytes currently resident
    std::uint64_t streams = 0;       ///< KV streams currently resident
    std::uint64_t spills = 0;        ///< cumulative streams spilled out
    std::uint64_t refills = 0;       ///< cumulative spilled-stream refills
    std::uint64_t sheds = 0;         ///< cumulative capacity sheds
    std::uint64_t lutEvictions = 0;  ///< cumulative LUT sets evicted
};

/**
 * Point-in-time residency gauges for one topology node, recorded from
 * ResidencyManager::nodeResidency() (serving/residency.h).  Kept as a
 * plain mirror struct so telemetry stays dependency-free.
 */
struct NodeResidencyGauge {
    std::uint64_t lutBytes = 0; ///< resident LUT table-set bytes on node
    std::uint64_t kvBytes = 0;  ///< resident raw KV bytes on node
};

/**
 * Cumulative LUT-broadcast byte counters split by link tier, recorded
 * from ResidencyStats (serving/residency.h).  The inter-node pair is
 * the codec acceptance metric: interRawBytes / interBytes is the
 * measured compression ratio on the CXL link.
 */
struct BroadcastTierBytes {
    double intraBytes = 0;    ///< bytes over the intra-node host link
    double interRawBytes = 0; ///< pre-codec bytes bound for remote nodes
    double interBytes = 0;    ///< bytes actually sent inter-node (coded)
};

/**
 * Cumulative fault-injection and recovery counters plus health gauges,
 * recorded from FaultInjector::stats() (serving/fault.h).  Mirrored as
 * a plain struct so telemetry stays dependency-free.
 */
struct FaultCounters {
    std::uint64_t transientFaults = 0;    ///< injected execute failures
    std::uint64_t retries = 0;            ///< retried attempts (charged)
    std::uint64_t corruptedBroadcasts = 0;///< checksum-detected payloads
    std::uint64_t resends = 0;            ///< broadcast resends (charged)
    std::uint64_t quarantines = 0;        ///< ranks ever quarantined
    std::uint64_t failovers = 0;          ///< re-homes + re-shards
    std::uint64_t shedFault = 0;          ///< requests shed by faults
    std::uint64_t linkDegrades = 0;       ///< degradation events fired
    std::uint64_t ranksDead = 0;          ///< gauge: currently dead
    std::uint64_t ranksQuarantined = 0;   ///< gauge: quarantined now
    double backoffSeconds = 0;            ///< virtual backoff charged
    /** Gauge: schedulable ranks / total ranks, in [0, 1]. */
    double capacityRatio = 1.0;
};

/** A consistent copy of all telemetry state (see Telemetry::snapshot). */
struct TelemetrySnapshot {
    /** Per-lane (DeadlineClass-indexed) submitted-request counters. */
    std::array<std::uint64_t, kDeadlineClasses> submitted{};
    /** Per-lane admitted-request counters. */
    std::array<std::uint64_t, kDeadlineClasses> admitted{};
    /** Per-lane deadline-shed counters. */
    std::array<std::uint64_t, kDeadlineClasses> shedDeadline{};
    /** Per-lane saturation-reject counters. */
    std::array<std::uint64_t, kDeadlineClasses> rejectedSaturated{};
    /** Per-lane fault-shed counters (admit-time and post-admission). */
    std::array<std::uint64_t, kDeadlineClasses> shedFault{};
    /** Per-lane completion aggregates. */
    std::array<LaneStats, kDeadlineClasses> lanes;
    /** Total collective seconds across completed requests. */
    double collectiveSeconds = 0;
    /** Total projected LUT-broadcast seconds across completions. */
    double lutBroadcastSeconds = 0;
    /** Latest KV-residency gauges (token engine, last recorded step). */
    KvResidencyGauges kv;
    /** Requests placed per topology node (index = node id); grows on
     * first placement recorded for a node. */
    std::vector<std::uint64_t> nodeRequests;
    /** Latest per-node residency gauges (index = node id). */
    std::vector<NodeResidencyGauge> nodeResidency;
    /** Latest per-tier LUT-broadcast byte counters. */
    BroadcastTierBytes broadcastTiers;
    /** Latest fault/recovery counters and health gauges. */
    FaultCounters faults;

    /** Submissions across all lanes. */
    std::uint64_t totalSubmitted() const;
    /** Admissions across all lanes. */
    std::uint64_t totalAdmitted() const;
};

/**
 * Thread-safe telemetry registry for one serving frontend.  The
 * scheduler records admissions and completions; serving code reads
 * snapshot() or scrapes prometheusText().
 *
 * Completion semantics: a "completion" is a *virtual-time sequencing*
 * event — it is recorded the moment the scheduler fixes a request's
 * start/completion on the rank timeline, which keeps telemetry
 * deterministic for a deterministic trace.  A request whose real
 * execution later fails still counts here (the error surfaces at the
 * scheduler's wait() instead); reconcile against the waiter's own
 * accounting when execution errors matter.
 */
class Telemetry
{
  public:
    /** Counts one submission and its admission @p outcome on @p lane. */
    void recordAdmission(DeadlineClass lane, AdmissionOutcome outcome);

    /** Folds one sequenced request into the lane aggregates. */
    void recordCompletion(const RequestSample& sample);

    /** Records one stream's time-to-first-token on @p lane. */
    void recordTtft(DeadlineClass lane, double seconds);

    /**
     * Records one emitted decode token on @p lane: its inter-token gap
     * @p gapSeconds (skipped when negative, i.e. the first token) and
     * whether it @p metDeadline (tokens with no deadline pass true).
     */
    void recordToken(DeadlineClass lane, double gapSeconds,
                     bool metDeadline);

    /** Replaces the KV-residency gauges with @p gauges. */
    void recordKvResidency(const KvResidencyGauges& gauges);

    /** Counts one request placed on topology node @p node. */
    void recordPlacement(unsigned node);

    /** Replaces the per-node residency gauges with @p nodes. */
    void recordNodeResidency(std::vector<NodeResidencyGauge> nodes);

    /** Replaces the per-tier broadcast byte counters with @p tiers. */
    void recordBroadcastTiers(const BroadcastTierBytes& tiers);

    /** Replaces the fault counters and health gauges with @p faults. */
    void recordFaults(const FaultCounters& faults);

    /**
     * Counts one admitted request on @p sample's lane that was shed by
     * faults after admission (the admit-time path goes through
     * recordAdmission with AdmissionOutcome::ShedFault instead).  The
     * virtual-time sequencer already recorded the request as a
     * completion, so its completed / deadline counters are retracted
     * here; the latency histograms keep the sequenced sample (bucket
     * counts are not retractable).
     */
    void recordPostAdmitFaultShed(const RequestSample& sample);

    /** A consistent copy of every counter and histogram. */
    TelemetrySnapshot snapshot() const;

    /**
     * Renders the snapshot in the Prometheus text exposition format:
     * localut_requests_total{lane,outcome}, per-lane cumulative
     * histogram series (localut_request_latency_seconds et al.),
     * deadline counters, and the collective/broadcast accumulators.
     */
    std::string prometheusText() const;

    /** Zeroes every counter and histogram. */
    void reset();

  private:
    mutable std::mutex mutex_;
    TelemetrySnapshot state_;
};

} // namespace localut

#endif // LOCALUT_SERVING_TELEMETRY_H_
