#ifndef LOCALUT_BACKEND_BANKPIM_BACKEND_H_
#define LOCALUT_BACKEND_BANKPIM_BACKEND_H_

/**
 * @file
 * Backend adapter over the bank-level PIM command model (paper Section
 * VI-K, Fig. 20/21).  Two design points exist at bank level: the
 * HBM-PIM-style SIMD baseline (mapped from DesignPoint::NaivePim) and the
 * LoCaLUT in-bank LUT redesign (DesignPoint::LoCaLut).  Timing comes from
 * DRAM command streams through the HBM2 bank state machine; the functional
 * output reuses the canonical-LUT executors, which mirror the in-bank
 * dataflow (slice streaming from the bank array).
 */

#include "backend/backend.h"
#include "banklevel/bank_pim.h"

namespace localut {

/** The bank-level PIM model behind the Backend interface. */
class BankPimBackend : public Backend
{
  public:
    explicit BankPimBackend(const BankPimConfig& config = {});

    const BackendCapabilities& capabilities() const override;

    GemmPlan plan(const GemmProblem& problem, DesignPoint design,
                  const PlanOverrides& overrides = {}) const override;

    KernelCost chargeCosts(const GemmPlan& plan) const override;

    using Backend::execute;
    GemmResult execute(const GemmProblem& problem, const GemmPlan& plan,
                       const ExecOptions& options) const override;

    CollectiveLinkProfile collectiveProfile() const override;

    MemoryProfile memoryProfile() const override;

    std::uint64_t configFingerprint() const override;

    const BankLevelPim& model() const { return model_; }

  private:
    /** Runs the command model for @p plan (SIMD or LUT). */
    BankPimResult modelRun(const GemmPlan& plan) const;

    BankLevelPim model_;
    BackendCapabilities caps_;
};

} // namespace localut

#endif // LOCALUT_BACKEND_BANKPIM_BACKEND_H_
