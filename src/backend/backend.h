#ifndef LOCALUT_BACKEND_BACKEND_H_
#define LOCALUT_BACKEND_BACKEND_H_

/**
 * @file
 * The backend abstraction: every PIM (or comparison) device model the
 * library can dispatch a quantized GEMM to implements this interface.
 * Five implementations ship with the library and register themselves in
 * the factory (see makeBackend()):
 *
 *  - "upmem"     UPMEM-class server model (src/kernels + src/upmem), the
 *                paper's main evaluation platform;
 *  - "bankpim"   bank-level PIM command model (src/banklevel, Fig. 20/21);
 *  - "host-cpu"  Xeon roofline (src/hostsim) + the reference kernels;
 *  - "host-gpu"  RTX 2080 Ti roofline + the reference kernels;
 *  - "upmem-sim" "upmem" with DPU-phase timing from the trace-driven
 *                cycle-level micro-simulator (src/upmemsim) instead of
 *                the analytical closed form; numerics are bit-exact with
 *                "upmem".
 *
 * Backends are stateless after construction: plan() and execute() are
 * const and safe to call from several threads at once, which is what lets
 * InferenceSession (serving/session.h) fan requests out over a worker
 * pool.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dram/timing.h"
#include "kernels/gemm.h"

namespace localut {

struct ExecOptions; // kernels/exec_engine.h

/** What a backend can and cannot do (queried by sessions and tests). */
struct BackendCapabilities {
    std::string name;        ///< registry name, e.g. "upmem"
    std::string description; ///< one-line human-readable summary
    bool functionalValues = false; ///< execute() can compute real outputs
    bool honorsOverrides = false;  ///< plan() honors PlanOverrides
    /**
     * execute()'s functional pass is the design-independent reference
     * MAC (host roofline devices): it reads only the decode codebooks
     * of a PreparedGemm, so serving layers skip caching full LUT
     * operands (packed indices, tables) for these backends.
     */
    bool referenceFunctionalOnly = false;
    unsigned parallelUnits = 0;    ///< DPUs / banks / devices
    std::vector<DesignPoint> designPoints; ///< accepted by plan()

    /** True when @p dp is in designPoints. */
    bool supports(DesignPoint dp) const;
};

/**
 * Link + DRAM-stream parameters behind a multi-rank collective (the
 * all-gather / reduce hop of a sharded execution, serving/sharding.h).
 * Each rank drains its output slice out of its DRAM banks (bounded by
 * collectiveDrainCost() over @p dram), then the host link moves the
 * aggregated bytes (bounded by @p link); the slower of the two paces the
 * collective.  Backends override collectiveProfile() to expose their own
 * device's numbers; the defaults model the UPMEM-class platform.
 */
struct CollectiveLinkProfile {
    HostLinkParams link;      ///< host<->device bulk-transfer model
    DramTimingParams dram;    ///< per-bank stream timing for the drain
    DramEnergyParams dramEnergy;
    unsigned banksPerRank = 64;   ///< banks streaming concurrently per rank
    double pjPerLinkByte = 150.0; ///< host link + channel I/O per byte
    /** Inter-node (CXL/PCIe fabric) tier a multi-node collective's
     * cross-node hop travels: slower, higher launch latency, and
     * costlier per byte than the intra-host DMA link.  The launch cost
     * covers the fabric transaction plus the remote-side DMA setup, so
     * it strictly exceeds the intra-host launch — a remote hop is never
     * cheaper than a local one, even for tiny transfers.  Irrelevant
     * (and never charged) on a single-node topology. */
    LinkTierParams interNode{6.0, 25.0, 360.0};

    /** The intra-host tier expressed in LinkTierParams form (drain-side
     * gather rate = link.pimToHostGBs), so both hops of a hierarchical
     * collective price through the same collectiveHopCost() helper. */
    LinkTierParams
    intraTier() const
    {
        return {link.pimToHostGBs, link.launchLatencyUs, pjPerLinkByte};
    }
};

/**
 * Table-memory parameters behind the serving layer's LUT residency
 * manager (serving/residency.h).  Every compute unit (DPU / bank) of a
 * logical rank holds its own copy of each resident table set, so
 * residency is tracked in per-copy bytes against @p lutBytesPerUnit —
 * the same per-unit budget the planner sizes LUTs against
 * (DpuParams::mramLutBudget() on the UPMEM platform).  A table set that
 * is not resident must be broadcast host -> PIM before its GEMM runs;
 * the broadcast fields price that transfer: each table byte crosses the
 * host link ONCE per rank — the on-DIMM broadcast hardware replicates
 * it to every unit of the rank at no extra link cost (the same
 * rank-parallel broadcast path HostLinkParams::hostToPimGBs models) —
 * plus one launch per table set.  Backends override memoryProfile() to
 * expose their own numbers; the defaults model the UPMEM-class
 * platform.
 */
struct MemoryProfile {
    /** MRAM bytes each unit devotes to LUT table sets (the residency
     * budget, in per-copy bytes). */
    std::uint64_t lutBytesPerUnit = 0;
    /** DPUs / banks per logical rank; each holds its own replica, so
     * the physical footprint of b resident bytes is b * unitsPerRank
     * (see lutBytesPerRank()) while link traffic stays per-copy. */
    unsigned unitsPerRank = 1;
    double broadcastGBs = 20.0;      ///< host -> PIM table broadcast rate
    double broadcastLatencyUs = 10.0;///< fixed launch per table broadcast
    double pjPerBroadcastByte = 150.0; ///< broadcast link energy per byte
    /** Inter-node broadcast rate (GB/s): table bytes bound for a rank on
     * a remote node cross the CXL/PCIe fabric instead of the local
     * broadcast link. */
    double interNodeGBs = 6.0;
    /** Fixed launch latency of one inter-node broadcast: the fabric
     * transaction plus the remote-side broadcast launch, so it strictly
     * exceeds broadcastLatencyUs and a remote home rank never prices
     * below a local one. */
    double interNodeLatencyUs = 25.0;
    /** Inter-node fabric energy per byte crossing. */
    double pjPerInterNodeByte = 360.0;
    /** Host-side delta/RLE codec throughput for compressed inter-node
     * broadcasts, in GB/s of *raw* bytes (encode side; the decode on
     * the node-side controller overlaps the link stream). */
    double codecGBs = 8.0;

    /** Physical MRAM devoted to tables across one rank's replicas. */
    std::uint64_t
    lutBytesPerRank() const
    {
        return lutBytesPerUnit * unitsPerRank;
    }

    /** The intra-host broadcast tier in LinkTierParams form. */
    LinkTierParams
    broadcastTier() const
    {
        return {broadcastGBs, broadcastLatencyUs, pjPerBroadcastByte};
    }

    /** The inter-node broadcast tier in LinkTierParams form. */
    LinkTierParams
    interNodeTier() const
    {
        return {interNodeGBs, interNodeLatencyUs, pjPerInterNodeByte};
    }
};

/**
 * A device model that plans and executes quantized GEMMs.
 *
 * The contract mirrors GemmEngine: plan() resolves a full execution plan,
 * chargeCosts() produces the raw event accounting for a plan (the same
 * numbers execute() reports), and execute() returns timing/energy plus —
 * when capabilities().functionalValues — the numeric output, which must be
 * bit-exact against referenceGemmInt() for integer configurations on every
 * backend (the cross-backend parity invariant; see tests/test_backend.cc).
 */
class Backend
{
  public:
    virtual ~Backend() = default; ///< backends delete polymorphically

    /** What this device can do (name, functional support, units). */
    virtual const BackendCapabilities& capabilities() const = 0;

    /** Resolves a full execution plan for @p problem under @p design. */
    virtual GemmPlan plan(const GemmProblem& problem, DesignPoint design,
                          const PlanOverrides& overrides = {}) const = 0;

    /** Raw event accounting of executing @p plan (no values). */
    virtual KernelCost chargeCosts(const GemmPlan& plan) const = 0;

    /**
     * Executes a plan.  ExecOptions (kernels/exec_engine.h) carries the
     * functional-pass switch plus the prepared-operand execution knobs:
     * a cached PreparedGemm, a scratch ExecArena, and a TileExecutor to
     * fan the output tiles across threads.  Values are bit-exact
     * regardless of the options (they only change where and how fast
     * the functional pass runs).
     */
    virtual GemmResult execute(const GemmProblem& problem,
                               const GemmPlan& plan,
                               const ExecOptions& options) const = 0;

    /** execute() with default options (functional pass off). */
    GemmResult execute(const GemmProblem& problem,
                       const GemmPlan& plan) const;
    /** execute() with a bare functional-pass switch. */
    GemmResult execute(const GemmProblem& problem, const GemmPlan& plan,
                       bool computeValues) const;

    /**
     * Charges @p ops scalar-equivalent host operations (the non-GEMM
     * transformer work a PIM offload leaves on the host) into the
     * reports.  The base implementation uses the default host compute
     * model; backends with their own host model override it.
     */
    virtual void chargeHostOps(double ops, TimingReport& timing,
                               EnergyReport& energy) const;

    /**
     * Parameters the sharding layer (serving/sharding.h) uses to charge
     * the all-gather / reduce transfer of a multi-rank execution.  The
     * base implementation returns the UPMEM-class defaults.
     */
    virtual CollectiveLinkProfile collectiveProfile() const;

    /**
     * Table-memory budget and broadcast-link parameters the residency
     * manager (serving/residency.h) uses to track which LUT table sets
     * are MRAM-resident per rank and to charge the host -> PIM broadcast
     * of a missing set.  The base implementation returns the UPMEM-class
     * defaults.
     */
    virtual MemoryProfile memoryProfile() const;

    /**
     * Hash of the device configuration behind this backend.  Two
     * backends with the same name() but different configurations (e.g.
     * a custom-rank UpmemBackend) must fingerprint differently: the
     * PlanCache keys plans by (name, fingerprint) so they never alias.
     */
    virtual std::uint64_t configFingerprint() const = 0;

    /** plan() + execute() convenience. */
    GemmResult execute(const GemmProblem& problem, DesignPoint design,
                       bool computeValues = true,
                       const PlanOverrides& overrides = {}) const;

    /** Registry name shorthand (capabilities().name). */
    const std::string& name() const { return capabilities().name; }

  protected:
    /** Shared implementation of chargeHostOps() for a host model. */
    static void chargeHostOpsWith(const HostComputeParams& host, double ops,
                                  TimingReport& timing,
                                  EnergyReport& energy);

    /** Order-dependent field hashing for configFingerprint(). */
    class FingerprintBuilder
    {
      public:
        /** Folds one double field into the fingerprint. */
        FingerprintBuilder& add(double value);
        /** Folds one integer field into the fingerprint. */
        FingerprintBuilder& add(std::uint64_t value);
        /** Folds one string field into the fingerprint. */
        FingerprintBuilder& add(const std::string& value);
        /** The accumulated fingerprint. */
        std::uint64_t value() const { return state_; }

      private:
        std::uint64_t state_ = 0xcbf29ce484222325ull;
    };
};

/** Shared-ownership handle to an immutable backend. */
using BackendPtr = std::shared_ptr<const Backend>;

/**
 * Creates a backend by registry name ("upmem", "bankpim", "host-cpu",
 * "host-gpu", "upmem-sim") with its default device configuration.
 * Fatals on unknown names (listing the registered ones).
 */
BackendPtr makeBackend(const std::string& name);

/** Registered backend names, in registration order. */
std::vector<std::string> backendNames();

/**
 * Registers (or replaces) a named backend factory.  The built-in backends
 * self-register; call this to expose custom device configurations to the
 * name-based lookup, e.g.:
 *
 *     registerBackend("upmem-8rank", [] {
 *         PimSystemConfig cfg = PimSystemConfig::upmemServer();
 *         cfg.ranks = 8;
 *         return std::make_shared<UpmemBackend>(cfg);
 *     });
 */
void registerBackend(const std::string& name,
                     std::function<BackendPtr()> factory);

} // namespace localut

#endif // LOCALUT_BACKEND_BACKEND_H_
