#ifndef LOCALUT_BACKEND_UPMEM_BACKEND_H_
#define LOCALUT_BACKEND_UPMEM_BACKEND_H_

/**
 * @file
 * Backend adapter over the UPMEM-class server model: GemmEngine does the
 * planning (paper Eq. 2-6 + full-event-model refinement) and the
 * functional+timed execution.  This is the paper's primary platform and
 * the only backend that models every design point of Fig. 9/10.
 */

#include "backend/backend.h"
#include "upmem/params.h"

namespace localut {

/** The UPMEM server model behind the Backend interface. */
class UpmemBackend : public Backend
{
  public:
    explicit UpmemBackend(
        const PimSystemConfig& config = PimSystemConfig::upmemServer());

    const BackendCapabilities& capabilities() const override;

    GemmPlan plan(const GemmProblem& problem, DesignPoint design,
                  const PlanOverrides& overrides = {}) const override;

    KernelCost chargeCosts(const GemmPlan& plan) const override;

    using Backend::execute;
    GemmResult execute(const GemmProblem& problem, const GemmPlan& plan,
                       const ExecOptions& options) const override;

    void chargeHostOps(double ops, TimingReport& timing,
                       EnergyReport& energy) const override;

    CollectiveLinkProfile collectiveProfile() const override;

    MemoryProfile memoryProfile() const override;

    std::uint64_t configFingerprint() const override;

    /** The wrapped engine (for callers migrating from the old API). */
    const GemmEngine& engine() const { return engine_; }

    const PimSystemConfig& system() const { return engine_.system(); }

  private:
    GemmEngine engine_;
    BackendCapabilities caps_;
};

} // namespace localut

#endif // LOCALUT_BACKEND_UPMEM_BACKEND_H_
