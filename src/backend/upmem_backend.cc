#include "backend/upmem_backend.h"

#include "kernels/exec_engine.h"

namespace localut {

UpmemBackend::UpmemBackend(const PimSystemConfig& config) : engine_(config)
{
    caps_.name = "upmem";
    caps_.description = "UPMEM-class server model (functional + timed)";
    caps_.functionalValues = true;
    caps_.honorsOverrides = true;
    caps_.parallelUnits = config.totalDpus();
    caps_.designPoints = {
        DesignPoint::NaivePim, DesignPoint::Ltc,  DesignPoint::OpLutDram,
        DesignPoint::OpLut,    DesignPoint::OpLc, DesignPoint::OpLcRc,
        DesignPoint::LoCaLut,
    };
}

const BackendCapabilities&
UpmemBackend::capabilities() const
{
    return caps_;
}

GemmPlan
UpmemBackend::plan(const GemmProblem& problem, DesignPoint design,
                   const PlanOverrides& overrides) const
{
    return engine_.plan(problem, design, overrides);
}

KernelCost
UpmemBackend::chargeCosts(const GemmPlan& plan) const
{
    return engine_.chargeCosts(plan);
}

GemmResult
UpmemBackend::execute(const GemmProblem& problem, const GemmPlan& plan,
                      const ExecOptions& options) const
{
    return engine_.run(problem, plan, options);
}

std::uint64_t
UpmemBackend::configFingerprint() const
{
    const PimSystemConfig& sys = engine_.system();
    return FingerprintBuilder()
        .add(std::uint64_t{sys.ranks})
        .add(std::uint64_t{sys.dpusPerRank})
        .add(sys.dpu.clockMhz)
        .add(std::uint64_t{sys.dpu.tasklets})
        .add(std::uint64_t{sys.dpu.fullIssueTasklets})
        .add(sys.dpu.dmaBytesPerCycle)
        .add(sys.dpu.dmaSetupCycles)
        .add(std::uint64_t{sys.dpu.wramBytes})
        .add(std::uint64_t{sys.dpu.mramBytes})
        .add(sys.dpu.wramLutFraction)
        .add(sys.dpu.mramLutFraction)
        .add(sys.link.hostToPimGBs)
        .add(sys.link.pimToHostGBs)
        .add(sys.link.launchLatencyUs)
        .add(sys.host.effectiveGops)
        .value();
}

CollectiveLinkProfile
UpmemBackend::collectiveProfile() const
{
    const PimSystemConfig& sys = engine_.system();
    CollectiveLinkProfile profile;
    profile.link = sys.link;
    profile.dram = DramTimingParams::upmemDdr4();
    profile.dramEnergy = DramEnergyParams::ddr4();
    profile.banksPerRank = sys.dpusPerRank;
    profile.pjPerLinkByte = sys.energy.pjPerLinkByte;
    return profile;
}

MemoryProfile
UpmemBackend::memoryProfile() const
{
    const PimSystemConfig& sys = engine_.system();
    MemoryProfile profile;
    profile.lutBytesPerUnit = sys.dpu.mramLutBudget();
    profile.unitsPerRank = sys.dpusPerRank;
    profile.broadcastGBs = sys.link.hostToPimGBs;
    profile.broadcastLatencyUs = sys.link.launchLatencyUs;
    profile.pjPerBroadcastByte = sys.energy.pjPerLinkByte;
    return profile;
}

void
UpmemBackend::chargeHostOps(double ops, TimingReport& timing,
                            EnergyReport& energy) const
{
    KernelCost cost;
    cost.addHostOps(Phase::HostOther, ops);
    const CostEvaluator eval(engine_.system());
    accumulate(timing, eval.timing(cost, 1));
    accumulate(energy, eval.energy(cost, 1));
}

} // namespace localut
