#include "backend/backend.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "backend/bankpim_backend.h"
#include "backend/host_backend.h"
#include "backend/upmem_backend.h"
#include "common/logging.h"
#include "kernels/exec_engine.h"
#include "upmemsim/sim_backend.h"

namespace localut {

bool
BackendCapabilities::supports(DesignPoint dp) const
{
    return std::find(designPoints.begin(), designPoints.end(), dp) !=
           designPoints.end();
}

void
Backend::chargeHostOpsWith(const HostComputeParams& host, double ops,
                           TimingReport& timing, EnergyReport& energy)
{
    const double seconds = ops / (host.effectiveGops * 1e9);
    timing.hostSeconds += seconds;
    timing.total += seconds;
    timing.seconds.add("host.other", seconds);
    const double joules = seconds * host.activeWatts;
    energy.total += joules;
    energy.joules.add("host.other", joules);
}

void
Backend::chargeHostOps(double ops, TimingReport& timing,
                       EnergyReport& energy) const
{
    chargeHostOpsWith(HostComputeParams{}, ops, timing, energy);
}

CollectiveLinkProfile
Backend::collectiveProfile() const
{
    CollectiveLinkProfile profile;
    profile.dram = DramTimingParams::upmemDdr4();
    profile.dramEnergy = DramEnergyParams::ddr4();
    return profile;
}

MemoryProfile
Backend::memoryProfile() const
{
    MemoryProfile profile;
    const DpuParams dpu;
    const HostLinkParams link;
    profile.lutBytesPerUnit = dpu.mramLutBudget();
    profile.unitsPerRank = 64;
    profile.broadcastGBs = link.hostToPimGBs;
    profile.broadcastLatencyUs = link.launchLatencyUs;
    return profile;
}

Backend::FingerprintBuilder&
Backend::FingerprintBuilder::add(std::uint64_t value)
{
    // FNV-1a over the value's bytes.
    for (unsigned i = 0; i < 8; ++i) {
        state_ ^= (value >> (8 * i)) & 0xff;
        state_ *= 0x100000001b3ull;
    }
    return *this;
}

Backend::FingerprintBuilder&
Backend::FingerprintBuilder::add(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return add(bits);
}

Backend::FingerprintBuilder&
Backend::FingerprintBuilder::add(const std::string& value)
{
    for (const char c : value) {
        state_ ^= static_cast<unsigned char>(c);
        state_ *= 0x100000001b3ull;
    }
    return add(std::uint64_t{value.size()});
}

GemmResult
Backend::execute(const GemmProblem& problem, const GemmPlan& plan) const
{
    return execute(problem, plan, ExecOptions{});
}

GemmResult
Backend::execute(const GemmProblem& problem, const GemmPlan& plan,
                 bool computeValues) const
{
    ExecOptions options;
    options.computeValues = computeValues;
    return execute(problem, plan, options);
}

GemmResult
Backend::execute(const GemmProblem& problem, DesignPoint design,
                 bool computeValues, const PlanOverrides& overrides) const
{
    return execute(problem, plan(problem, design, overrides),
                   computeValues);
}

namespace {

struct Registry {
    std::mutex mutex;
    /** (name, factory) pairs; insertion order is the listing order. */
    std::vector<std::pair<std::string, std::function<BackendPtr()>>>
        entries;
};

Registry&
registry()
{
    static Registry* r = [] {
        auto* reg = new Registry;
        reg->entries.emplace_back("upmem", [] {
            return std::make_shared<const UpmemBackend>();
        });
        reg->entries.emplace_back("bankpim", [] {
            return std::make_shared<const BankPimBackend>();
        });
        reg->entries.emplace_back("host-cpu",
                                  [] { return HostBackend::cpu(); });
        reg->entries.emplace_back("host-gpu",
                                  [] { return HostBackend::gpu(); });
        reg->entries.emplace_back("upmem-sim", [] {
            return std::make_shared<const UpmemSimBackend>();
        });
        return reg;
    }();
    return *r;
}

} // namespace

BackendPtr
makeBackend(const std::string& name)
{
    std::function<BackendPtr()> factory;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (const auto& [entryName, entryFactory] : reg.entries) {
            if (entryName == name) {
                factory = entryFactory;
                break;
            }
        }
    }
    if (!factory) {
        std::string known;
        for (const std::string& n : backendNames()) {
            known += (known.empty() ? "" : ", ") + n;
        }
        LOCALUT_FATAL("unknown backend \"", name, "\" (registered: ",
                      known, ")");
    }
    BackendPtr backend = factory();
    LOCALUT_ASSERT(backend != nullptr, "backend factory returned null");
    return backend;
}

std::vector<std::string>
backendNames()
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.entries.size());
    for (const auto& [name, factory] : reg.entries) {
        names.push_back(name);
    }
    return names;
}

void
registerBackend(const std::string& name,
                std::function<BackendPtr()> factory)
{
    LOCALUT_REQUIRE(!name.empty() && factory != nullptr,
                    "backend registration needs a name and a factory");
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [entryName, entryFactory] : reg.entries) {
        if (entryName == name) {
            entryFactory = std::move(factory);
            return;
        }
    }
    reg.entries.emplace_back(name, std::move(factory));
}

} // namespace localut
