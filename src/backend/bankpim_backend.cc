#include "backend/bankpim_backend.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/exec_engine.h"

namespace localut {

BankPimBackend::BankPimBackend(const BankPimConfig& config) : model_(config)
{
    caps_.name = "bankpim";
    caps_.description = "bank-level PIM command model (HBM2 banks)";
    caps_.functionalValues = true;
    caps_.honorsOverrides = false; // packing is fixed by the LUT units
    caps_.parallelUnits = config.totalBanks();
    caps_.designPoints = {DesignPoint::NaivePim, DesignPoint::LoCaLut};
}

const BackendCapabilities&
BankPimBackend::capabilities() const
{
    return caps_;
}

GemmPlan
BankPimBackend::plan(const GemmProblem& problem, DesignPoint design,
                     const PlanOverrides& overrides) const
{
    (void)overrides;
    LOCALUT_REQUIRE(caps_.supports(design),
                    "bank-level PIM models only the SIMD baseline "
                    "(NaivePim) and the LUT redesign (LoCaLut), not ",
                    designPointName(design));
    GemmPlan plan(design, problem.config());
    plan.m = problem.m();
    plan.k = problem.k();
    plan.n = problem.n();

    // Mirror the model's internal bank-grid partition (maximize usage).
    const unsigned banks = model_.config().totalBanks();
    plan.gN = static_cast<unsigned>(std::min<std::size_t>(plan.n, banks));
    plan.gM = static_cast<unsigned>(std::min<std::size_t>(
        plan.m, std::max<unsigned>(1, banks / plan.gN)));
    plan.tileM = static_cast<unsigned>(
        ceilDiv(plan.m, std::size_t{plan.gM}));
    plan.tileN = static_cast<unsigned>(
        ceilDiv(plan.n, std::size_t{plan.gN}));

    if (design == DesignPoint::LoCaLut) {
        plan.p = model_.choosePackingDegree(plan.config);
        LOCALUT_REQUIRE(plan.p >= 1,
                        "no packing degree fits the LUT units for ",
                        plan.config.name());
        plan.streaming = true; // slices stream from the bank array
    }
    plan.groups =
        static_cast<unsigned>(ceilDiv(plan.k, std::size_t{plan.p}));
    plan.predictedSeconds = modelRun(plan).seconds;
    return plan;
}

CollectiveLinkProfile
BankPimBackend::collectiveProfile() const
{
    const BankPimConfig& cfg = model_.config();
    CollectiveLinkProfile profile;
    profile.dram = cfg.dram;
    profile.dramEnergy = cfg.dramEnergy;
    profile.banksPerRank = cfg.banksPerChannel;
    return profile;
}

MemoryProfile
BankPimBackend::memoryProfile() const
{
    const BankPimConfig& cfg = model_.config();
    MemoryProfile profile;
    profile.lutBytesPerUnit = static_cast<std::uint64_t>(
        cfg.bankLutFraction * static_cast<double>(cfg.bankBytes));
    profile.unitsPerRank = cfg.banksPerChannel;
    // Tables broadcast over the same bulk host link the collective uses
    // (the bank-level study keeps the UPMEM-class host interface).
    const HostLinkParams link;
    profile.broadcastGBs = link.hostToPimGBs;
    profile.broadcastLatencyUs = link.launchLatencyUs;
    return profile;
}

std::uint64_t
BankPimBackend::configFingerprint() const
{
    const BankPimConfig& cfg = model_.config();
    return FingerprintBuilder()
        .add(std::uint64_t{cfg.channels})
        .add(std::uint64_t{cfg.banksPerChannel})
        .add(std::uint64_t{cfg.simdLanes})
        .add(std::uint64_t{cfg.lutUnits})
        .add(std::uint64_t{cfg.lutUnitBytes})
        .add(cfg.lutUtilization)
        .add(cfg.bankLutFraction)
        .add(std::uint64_t{cfg.bankBytes})
        .add(cfg.dram.tCkNs)
        .add(std::uint64_t{cfg.dram.rowBytes})
        .add(std::uint64_t{cfg.dram.burstBytes})
        .value();
}

BankPimResult
BankPimBackend::modelRun(const GemmPlan& plan) const
{
    if (plan.design == DesignPoint::NaivePim) {
        return model_.simdGemm(plan.m, plan.k, plan.n);
    }
    return model_.lutGemm(plan.m, plan.k, plan.n, plan.config);
}

KernelCost
BankPimBackend::chargeCosts(const GemmPlan& plan) const
{
    const BankPimResult r = modelRun(plan);
    // Command-level accounting: one "instruction" per column command on
    // the critical bank, with the streamed bytes as DMA traffic.  This
    // keeps breakdown tables meaningful even though the timing itself is
    // measured on the DRAM state machine, not derived from these counts.
    KernelCost cost;
    const Phase phase = plan.design == DesignPoint::NaivePim
                            ? Phase::MacCompute
                            : Phase::CanonicalAccess;
    cost.addInstr(phase, r.commands);
    cost.addDma(Phase::OperandDma,
                r.commands * model_.config().dram.burstBytes, r.commands);
    return cost;
}

GemmResult
BankPimBackend::execute(const GemmProblem& problem, const GemmPlan& plan,
                        const ExecOptions& options) const
{
    const BankPimResult r = modelRun(plan);

    GemmResult result;
    result.cost = chargeCosts(plan);
    result.timing.dpuSeconds = r.seconds;
    result.timing.total = r.seconds;
    result.timing.seconds.add(plan.design == DesignPoint::NaivePim
                                  ? "bank.simd_commands"
                                  : "bank.lut_commands",
                              r.seconds);
    result.energy.total = r.energyJ;
    result.energy.joules.add("bank.dynamic+background", r.energyJ);

    if (!options.computeValues) {
        return result;
    }
    LOCALUT_REQUIRE(!problem.w.codes.empty() && !problem.a.codes.empty(),
                    "functional pass needs materialized codes");
    // The bank model's LoCaLut plan carries streaming = true and the
    // model's packing degree, so the engine picks the slice-streaming
    // kernel exactly as the legacy functional executor did.
    LOCALUT_ASSERT(plan.design == DesignPoint::NaivePim || plan.p == r.p,
                   "bank-level plan packing degree diverged from model");
    const bool isInt = plan.config.weightCodec.isInteger() &&
                       plan.config.actCodec.isInteger();
    if (isInt) {
        executeGemmInt(problem, plan, options, result.outInt);
    } else {
        executeGemmFloat(problem, plan, options, result.outFloat);
    }
    return result;
}

} // namespace localut
