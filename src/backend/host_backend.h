#ifndef LOCALUT_BACKEND_HOST_BACKEND_H_
#define LOCALUT_BACKEND_HOST_BACKEND_H_

/**
 * @file
 * Backend adapter over the conventional comparison devices (paper
 * Fig. 17): a roofline model (src/hostsim) provides timing/energy, and the
 * reference kernels provide the functional output.  Low-bit GEMMs execute
 * through the unpack/dequantize path, so the modeled time is flat across
 * design points — the design point only selects which LUT structure the
 * PIM backends would use, while the numeric result is identical by the
 * bit-exactness invariant.  That makes this backend the parity oracle for
 * the PIM backends' functional outputs.
 */

#include "backend/backend.h"
#include "hostsim/roofline.h"
#include "upmem/params.h"

namespace localut {

/** A roofline comparison device behind the Backend interface. */
class HostBackend : public Backend
{
  public:
    /** @p name is the registry name ("host-cpu" / "host-gpu" / custom). */
    HostBackend(std::string name, const RooflineDevice& device,
                const HostComputeParams& hostOps = {});

    /** Xeon Gold 5215 ("host-cpu"). */
    static std::shared_ptr<HostBackend> cpu();

    /** RTX 2080 Ti ("host-gpu"). */
    static std::shared_ptr<HostBackend> gpu();

    const BackendCapabilities& capabilities() const override;

    GemmPlan plan(const GemmProblem& problem, DesignPoint design,
                  const PlanOverrides& overrides = {}) const override;

    KernelCost chargeCosts(const GemmPlan& plan) const override;

    using Backend::execute;
    GemmResult execute(const GemmProblem& problem, const GemmPlan& plan,
                       const ExecOptions& options) const override;

    void chargeHostOps(double ops, TimingReport& timing,
                       EnergyReport& energy) const override;

    CollectiveLinkProfile collectiveProfile() const override;

    MemoryProfile memoryProfile() const override;

    std::uint64_t configFingerprint() const override;

    const RooflineDevice& device() const { return device_; }

  private:
    RooflineDevice device_;
    HostComputeParams hostOps_;
    BackendCapabilities caps_;
};

} // namespace localut

#endif // LOCALUT_BACKEND_HOST_BACKEND_H_
