#include "backend/host_backend.h"

#include <utility>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/exec_engine.h"

namespace localut {

HostBackend::HostBackend(std::string name, const RooflineDevice& device,
                         const HostComputeParams& hostOps)
    : device_(device), hostOps_(hostOps)
{
    caps_.name = std::move(name);
    caps_.description = device_.name + " roofline + reference kernels";
    caps_.functionalValues = true;
    caps_.honorsOverrides = false; // no LUT placement to override
    caps_.referenceFunctionalOnly = true; // reference MAC, no LUT operands
    caps_.parallelUnits = 1;
    caps_.designPoints = {
        DesignPoint::NaivePim, DesignPoint::Ltc,  DesignPoint::OpLutDram,
        DesignPoint::OpLut,    DesignPoint::OpLc, DesignPoint::OpLcRc,
        DesignPoint::LoCaLut,
    };
}

std::shared_ptr<HostBackend>
HostBackend::cpu()
{
    return std::make_shared<HostBackend>("host-cpu",
                                         RooflineDevice::xeonGold5215());
}

std::shared_ptr<HostBackend>
HostBackend::gpu()
{
    return std::make_shared<HostBackend>("host-gpu",
                                         RooflineDevice::rtx2080Ti());
}

const BackendCapabilities&
HostBackend::capabilities() const
{
    return caps_;
}

GemmPlan
HostBackend::plan(const GemmProblem& problem, DesignPoint design,
                  const PlanOverrides& overrides) const
{
    (void)overrides; // a roofline device has no packing/placement choices
    GemmPlan plan(design, problem.config());
    plan.m = problem.m();
    plan.k = problem.k();
    plan.n = problem.n();
    plan.tileM = static_cast<unsigned>(plan.m);
    plan.tileN = static_cast<unsigned>(plan.n);
    plan.predictedSeconds =
        rooflineGemm(device_, plan.m, plan.k, plan.n,
                     plan.config.bw(), plan.config.ba())
            .seconds;
    return plan;
}

KernelCost
HostBackend::chargeCosts(const GemmPlan& plan) const
{
    const double macs =
        static_cast<double>(plan.m) * plan.k * plan.n;
    const double opsPerMac =
        1.0 + (plan.config.bw() < 8 || plan.config.ba() < 8
                   ? device_.unpackOpsPerMac
                   : 0.0);
    KernelCost cost;
    cost.addHostOps(Phase::HostOther, macs * opsPerMac);
    if (device_.pcieBytesPerSec > 0) {
        cost.addLinkBytes(
            Phase::LinkActIn,
            static_cast<double>(bytesForBits(
                static_cast<std::uint64_t>(plan.k) * plan.n *
                plan.config.ba())));
        cost.addLinkBytes(Phase::LinkOut,
                          static_cast<double>(plan.m) * plan.n * 4.0);
    }
    return cost;
}

GemmResult
HostBackend::execute(const GemmProblem& problem, const GemmPlan& plan,
                     const ExecOptions& options) const
{
    const RooflineResult r =
        rooflineGemm(device_, plan.m, plan.k, plan.n, plan.config.bw(),
                     plan.config.ba());

    GemmResult result;
    result.cost = chargeCosts(plan);
    result.timing.hostSeconds = std::max(r.computeSeconds, r.memorySeconds);
    result.timing.linkSeconds = r.transferSeconds;
    result.timing.total = r.seconds;
    result.timing.seconds.add("host.compute", r.computeSeconds);
    result.timing.seconds.add("host.memory", r.memorySeconds);
    if (r.transferSeconds > 0) {
        result.timing.seconds.add("link.pcie", r.transferSeconds);
    }
    result.energy.total = r.energyJ;
    result.energy.joules.add("host." + device_.name, r.energyJ);

    if (!options.computeValues) {
        return result;
    }
    LOCALUT_REQUIRE(!problem.w.codes.empty() && !problem.a.codes.empty(),
                    "functional pass needs materialized codes");
    // Host devices always execute the reference MAC whatever the design
    // point; the engine path adds prepared decode codebooks, arena
    // scratch, and tiled execution, bit-exact vs referenceGemmInt().
    if (plan.config.weightCodec.isInteger() &&
        plan.config.actCodec.isInteger()) {
        executeReferenceInt(problem, options, result.outInt);
    } else {
        executeReferenceFloat(problem, options, result.outFloat);
    }
    return result;
}

void
HostBackend::chargeHostOps(double ops, TimingReport& timing,
                           EnergyReport& energy) const
{
    chargeHostOpsWith(hostOps_, ops, timing, energy);
}

CollectiveLinkProfile
HostBackend::collectiveProfile() const
{
    CollectiveLinkProfile profile;
    // Shards gather over the device's own link (PCIe) when it has one;
    // host-resident devices gather at memory bandwidth with a cheap
    // launch.  The DRAM drain bound of the default profile is far above
    // either, so the link is what paces these devices' collectives.
    const bool hasPcie = device_.pcieBytesPerSec > 0;
    const double bytesPerSec =
        hasPcie ? device_.pcieBytesPerSec : device_.memBytesPerSec;
    profile.link.hostToPimGBs = bytesPerSec / 1e9;
    profile.link.pimToHostGBs = bytesPerSec / 1e9;
    profile.link.launchLatencyUs = hasPcie ? 10.0 : 1.0;
    profile.pjPerLinkByte = 20.0; // DDR/PCIe-class per-byte energy
    return profile;
}

MemoryProfile
HostBackend::memoryProfile() const
{
    // Tables live in the device's own memory: host DRAM for the CPU,
    // GDDR behind PCIe for the GPU.  Budgets are generous (table working
    // sets are tiny next to either), and the "broadcast" is a memcpy
    // (CPU) or a PCIe upload (GPU) priced like the collective link.
    const bool hasPcie = device_.pcieBytesPerSec > 0;
    MemoryProfile profile;
    profile.lutBytesPerUnit = hasPcie ? (std::uint64_t{11} << 30)
                                      : (std::uint64_t{16} << 30);
    profile.unitsPerRank = 1;
    profile.broadcastGBs =
        (hasPcie ? device_.pcieBytesPerSec : device_.memBytesPerSec) / 1e9;
    profile.broadcastLatencyUs = hasPcie ? 10.0 : 1.0;
    profile.pjPerBroadcastByte = 20.0;
    return profile;
}

std::uint64_t
HostBackend::configFingerprint() const
{
    return FingerprintBuilder()
        .add(device_.name)
        .add(device_.peakOpsPerSec)
        .add(device_.memBytesPerSec)
        .add(device_.efficiency)
        .add(device_.unpackOpsPerMac)
        .add(device_.pcieBytesPerSec)
        .add(std::uint64_t{device_.skinnyKThreshold})
        .add(device_.skinnyKFactor)
        .add(hostOps_.effectiveGops)
        .value();
}

} // namespace localut
