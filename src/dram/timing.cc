#include "dram/timing.h"

#include <algorithm>

#include "common/logging.h"

namespace localut {

DramTimingParams
DramTimingParams::upmemDdr4()
{
    DramTimingParams t;
    t.tCkNs = 0.833; // DDR4-2400
    t.tRCD = 16;
    t.tRP = 16;
    t.tCL = 16;
    t.tRAS = 39;
    t.tCCD = 4;
    t.tWR = 18;
    t.burstCycles = 4;
    t.burstBytes = 32;
    t.rowBytes = 1024;
    t.banksPerChannel = 16;
    return t;
}

DramTimingParams
DramTimingParams::hbm2()
{
    DramTimingParams t;
    t.tCkNs = 1.0; // 1 GHz core clock (2 Gbps pins)
    t.tRCD = 14;
    t.tRP = 14;
    t.tCL = 14;
    t.tRAS = 34;
    t.tCCD = 2;    // pseudo-channel, BL4
    t.tWR = 16;
    t.burstCycles = 2;
    t.burstBytes = 32; // 256-bit internal PIM datapath per bank
    t.rowBytes = 2048;
    t.banksPerChannel = 16;
    return t;
}

DramEnergyParams
DramEnergyParams::ddr4()
{
    return {};
}

DramEnergyParams
DramEnergyParams::hbm2()
{
    DramEnergyParams e;
    e.pjPerAct = 650.0;
    e.pjPerRdBurst = 250.0; // shorter wires, wide internal bus
    e.pjPerWrBurst = 260.0;
    e.backgroundMwPerBank = 4.0;
    return e;
}

double
bankStreamBytesPerSec(const DramTimingParams& t)
{
    const double burstsPerRow =
        static_cast<double>(t.rowBytes) / t.burstBytes;
    const double burstCycles =
        static_cast<double>(std::max(t.tCCD, t.burstCycles));
    const double rowCycles =
        t.tRP + t.tRCD + burstsPerRow * burstCycles;
    return static_cast<double>(t.rowBytes) / (rowCycles * t.tCkNs * 1e-9);
}

CollectiveCost
collectiveDrainCost(const DramTimingParams& t, const DramEnergyParams& e,
                    unsigned banks, double bytes)
{
    LOCALUT_REQUIRE(banks >= 1 && bytes >= 0,
                    "degenerate collective drain");
    CollectiveCost cost;
    cost.seconds = bytes / (static_cast<double>(banks) *
                            bankStreamBytesPerSec(t));
    const double bursts = bytes / t.burstBytes;
    const double rows = bytes / t.rowBytes;
    cost.joules = (bursts * e.pjPerRdBurst + rows * e.pjPerAct) * 1e-12;
    return cost;
}

CollectiveCost
collectiveHopCost(const DramTimingParams& t, const DramEnergyParams& e,
                  const CollectiveHop& hop, const LinkTierParams& tier)
{
    LOCALUT_REQUIRE(hop.perSourceDrainBytes >= 0 && hop.totalDrainBytes >= 0 &&
                        hop.paceLinkBytes >= 0 && hop.totalLinkBytes >= 0,
                    "negative collective hop bytes");
    CollectiveCost cost;
    if (hop.totalDrainBytes <= 0 && hop.totalLinkBytes <= 0)
        return cost;
    CollectiveCost drain;
    if (hop.drainBanks > 0 && hop.perSourceDrainBytes > 0)
        drain = collectiveDrainCost(t, e, hop.drainBanks,
                                    hop.perSourceDrainBytes);
    const double linkSeconds = hop.paceLinkBytes / (tier.gbPerSec * 1e9);
    cost.seconds =
        tier.launchLatencyUs * 1e-6 + std::max(drain.seconds, linkSeconds);
    CollectiveCost drainAll;
    if (hop.drainBanks > 0 && hop.totalDrainBytes > 0)
        drainAll = collectiveDrainCost(t, e, hop.drainBanks,
                                       hop.totalDrainBytes);
    cost.joules = drainAll.joules + tier.pjPerByte * hop.totalLinkBytes * 1e-12;
    return cost;
}

double
retryBackoffSeconds(double baseSeconds, double capSeconds, unsigned attempt)
{
    LOCALUT_REQUIRE(baseSeconds >= 0 && capSeconds >= 0,
                    "negative retry backoff parameters");
    double interval = baseSeconds;
    for (unsigned i = 0; i < attempt && interval < capSeconds; ++i)
        interval *= 2.0;
    return std::min(interval, capSeconds);
}

DramBank::DramBank(const DramTimingParams& timing) : timing_(timing) {}

std::uint64_t
DramBank::issue(DramCommand cmd, std::uint32_t row, std::uint64_t earliest)
{
    switch (cmd) {
      case DramCommand::Act: {
        LOCALUT_ASSERT(!rowOpen_, "ACT while a row is open");
        const std::uint64_t legal =
            anyAct_ ? std::max(earliest, lastPre_ + timing_.tRP) : earliest;
        lastAct_ = legal;
        anyAct_ = true;
        rowOpen_ = true;
        openRow_ = row;
        ++activations_;
        return legal;
      }
      case DramCommand::Pre: {
        LOCALUT_ASSERT(rowOpen_, "PRE with no open row");
        std::uint64_t legal = std::max(earliest, lastAct_ + timing_.tRAS);
        legal = std::max(legal, lastWrEnd_ + timing_.tWR);
        lastPre_ = legal;
        rowOpen_ = false;
        return legal;
      }
      case DramCommand::Rd: {
        LOCALUT_ASSERT(rowOpen_ && openRow_ == row, "RD to a closed row");
        std::uint64_t legal = std::max(earliest, lastAct_ + timing_.tRCD);
        legal = std::max(legal, lastRdIssue_ + timing_.tCCD);
        lastRdIssue_ = legal;
        ++reads_;
        return legal;
      }
      case DramCommand::Wr: {
        LOCALUT_ASSERT(rowOpen_ && openRow_ == row, "WR to a closed row");
        std::uint64_t legal = std::max(earliest, lastAct_ + timing_.tRCD);
        legal = std::max(legal, lastRdIssue_ + timing_.tCCD);
        lastRdIssue_ = legal; // shares the column-command bus slot
        lastWrEnd_ = legal + timing_.tCL + timing_.burstCycles;
        ++writes_;
        return legal;
      }
    }
    LOCALUT_PANIC("unreachable DRAM command");
}

std::uint64_t
DramBank::readBurst(std::uint32_t row, std::uint64_t earliest)
{
    if (!rowOpen_ || openRow_ != row) {
        std::uint64_t t = earliest;
        if (rowOpen_) {
            t = issue(DramCommand::Pre, openRow_, t);
        }
        t = issue(DramCommand::Act, row, t);
        earliest = t;
    }
    const std::uint64_t rd = issue(DramCommand::Rd, row, earliest);
    return rd + timing_.tCL + timing_.burstCycles;
}

std::uint64_t
DramBank::writeBurst(std::uint32_t row, std::uint64_t earliest)
{
    if (!rowOpen_ || openRow_ != row) {
        std::uint64_t t = earliest;
        if (rowOpen_) {
            t = issue(DramCommand::Pre, openRow_, t);
        }
        t = issue(DramCommand::Act, row, t);
        earliest = t;
    }
    const std::uint64_t wr = issue(DramCommand::Wr, row, earliest);
    return wr + timing_.tCL + timing_.burstCycles;
}

double
DramBank::energyJoules(const DramEnergyParams& e,
                       std::uint64_t elapsedCycles) const
{
    const double dynamicPj = static_cast<double>(activations_) * e.pjPerAct +
                             static_cast<double>(reads_) * e.pjPerRdBurst +
                             static_cast<double>(writes_) * e.pjPerWrBurst;
    const double seconds =
        static_cast<double>(elapsedCycles) * timing_.tCkNs * 1e-9;
    return dynamicPj * 1e-12 + e.backgroundMwPerBank * 1e-3 * seconds;
}

} // namespace localut
