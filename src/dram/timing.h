#ifndef LOCALUT_DRAM_TIMING_H_
#define LOCALUT_DRAM_TIMING_H_

/**
 * @file
 * DRAM bank timing parameters and a per-bank command-legality state machine
 * (Ramulator-style, reduced to the parameters that matter at bank level).
 * Used directly by the bank-level PIM study (paper Section VI-K) and to
 * derive/justify the UPMEM DMA bandwidth constants.
 */

#include <cstdint>

namespace localut {

/** Timing parameters in DRAM-core clock cycles (except tCkNs). */
struct DramTimingParams {
    double tCkNs = 0.833;    ///< core clock period
    unsigned tRCD = 16;      ///< ACT -> RD/WR
    unsigned tRP = 16;       ///< PRE -> ACT
    unsigned tCL = 16;       ///< RD -> first data
    unsigned tRAS = 39;      ///< ACT -> PRE
    unsigned tCCD = 4;       ///< RD -> RD (same bank group)
    unsigned tWR = 18;       ///< end of write burst -> PRE
    unsigned burstCycles = 4;   ///< data transfer cycles per burst
    unsigned burstBytes = 32;   ///< bytes per burst per bank
    unsigned rowBytes = 1024;   ///< page size per bank
    unsigned banksPerChannel = 16;

    /** DDR4-2400-class device as found on UPMEM DIMMs. */
    static DramTimingParams upmemDdr4();

    /** HBM2 pseudo-channel bank (for the HBM-PIM comparison). */
    static DramTimingParams hbm2();
};

/** Per-event DRAM energies (current-profile-derived approximations). */
struct DramEnergyParams {
    double pjPerAct = 909.0;      ///< ACT+PRE pair
    double pjPerRdBurst = 467.0;  ///< one RD burst
    double pjPerWrBurst = 484.0;  ///< one WR burst
    double backgroundMwPerBank = 6.0;

    static DramEnergyParams ddr4();
    static DramEnergyParams hbm2();
};

/** DRAM command set modeled at bank level. */
enum class DramCommand { Act, Pre, Rd, Wr };

/**
 * Sustained bytes/s one bank streams in sequential bursts: a full row of
 * bursts at the column-command rate, with the PRE+ACT row turnaround
 * amortized over the row.  This closed form bounds the per-rank drain
 * rate of a sharded all-gather (serving/sharding.h), where every rank
 * streams its output slice out of its banks before the host link hop.
 */
double bankStreamBytesPerSec(const DramTimingParams& t);

/** Time/energy of draining bytes out of a rank's DRAM banks. */
struct CollectiveCost {
    double seconds = 0;
    double joules = 0;
};

/**
 * Cost for @p banks banks of one rank to stream @p bytes (total across
 * the banks) in sequential bursts: time is the per-bank stream rate
 * aggregated over the banks; energy charges one RD burst per burstBytes
 * and one ACT+PRE pair per rowBytes.
 */
CollectiveCost collectiveDrainCost(const DramTimingParams& t,
                                   const DramEnergyParams& e,
                                   unsigned banks, double bytes);

/**
 * One interconnect tier of the hierarchical topology: the link every
 * hop of a collective crosses at that level.  The intra-host tier is
 * the PIM<->host DMA link; the inter-node tier is the CXL/PCIe fabric
 * between PIM nodes (slower, higher launch latency, costlier per byte).
 */
struct LinkTierParams {
    double gbPerSec = 12.0;       ///< sustained link rate (GB/s)
    double launchLatencyUs = 10.0; ///< fixed per-collective launch latency
    double pjPerByte = 150.0;     ///< transfer energy per byte crossing
};

/**
 * One hop of a collective over one tier: the DRAM drain feeding the hop
 * (zero for pure link hops such as the inter-node forward of an already
 * host-resident gather) plus the bytes the tier's links move.
 *
 * Drain and link pacing overlap (the link streams while banks drain),
 * so a hop's time is the launch latency plus the max of the two;
 * energy is additive (every drained byte and every link byte pays).
 */
struct CollectiveHop {
    unsigned drainBanks = 0;        ///< banks per draining source (0 = no drain)
    double perSourceDrainBytes = 0; ///< largest single source's drain (paces time)
    double totalDrainBytes = 0;     ///< all sources' drain bytes (pays energy)
    double paceLinkBytes = 0;       ///< bytes the tier's busiest link serializes
    double totalLinkBytes = 0;      ///< aggregate bytes crossing the tier (energy)
};

/**
 * Time/energy of one collective hop over one tier:
 * `launch + max(perSourceDrain, paceLinkBytes/rate)` seconds;
 * drain energy on totalDrainBytes plus link energy on totalLinkBytes.
 * With pace == total == drain bytes this reproduces the single-host
 * collective charge exactly (golden-pinned in test_golden_costs).
 */
CollectiveCost collectiveHopCost(const DramTimingParams& t,
                                 const DramEnergyParams& e,
                                 const CollectiveHop& hop,
                                 const LinkTierParams& tier);

/**
 * Capped exponential backoff interval before retry number @p attempt
 * (0-based): `min(baseSeconds * 2^attempt, capSeconds)`.  Virtual-time
 * seconds charged into a TimingReport; never a wall-clock sleep.
 */
double retryBackoffSeconds(double baseSeconds, double capSeconds,
                           unsigned attempt);

/**
 * Single-bank command scheduler: accepts commands at the earliest legal
 * cycle and tracks activation/read/write counts for the energy model.
 *
 * The caller owns global time; issue() returns the cycle at which the
 * command actually issued (>= the requested cycle).
 */
class DramBank
{
  public:
    explicit DramBank(const DramTimingParams& timing);

    /** Issues @p cmd no earlier than @p earliest; returns the issue cycle. */
    std::uint64_t issue(DramCommand cmd, std::uint32_t row,
                        std::uint64_t earliest);

    /**
     * Convenience: opens @p row if needed (PRE+ACT) and issues a RD burst.
     * Returns the cycle at which the burst's data has fully transferred.
     */
    std::uint64_t readBurst(std::uint32_t row, std::uint64_t earliest);

    /** Same for a WR burst; returns the cycle the write burst completes. */
    std::uint64_t writeBurst(std::uint32_t row, std::uint64_t earliest);

    bool rowOpen() const { return rowOpen_; }
    std::uint32_t openRow() const { return openRow_; }

    std::uint64_t activations() const { return activations_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    /** Energy (J) for the activity so far plus background over @p cycles. */
    double energyJoules(const DramEnergyParams& e,
                        std::uint64_t elapsedCycles) const;

  private:
    DramTimingParams timing_;
    bool rowOpen_ = false;
    std::uint32_t openRow_ = 0;

    std::uint64_t lastAct_ = 0;
    std::uint64_t lastPre_ = 0;
    std::uint64_t lastRdIssue_ = 0;
    std::uint64_t lastWrEnd_ = 0;
    bool anyAct_ = false;

    std::uint64_t activations_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace localut

#endif // LOCALUT_DRAM_TIMING_H_
