#include "nn/workload.h"

#include "common/logging.h"
#include "nn/inference.h"

namespace localut {

namespace {

/** Host scalar-op estimates for the non-GEMM transformer work. */
constexpr double kLayerNormOpsPerElem = 8.0;
constexpr double kGeluOpsPerElem = 8.0;
constexpr double kSoftmaxOpsPerElem = 10.0;
constexpr double kResidualOpsPerElem = 1.0;
/**
 * Dense attention score/value products vectorize on AVX-512 (unlike the
 * transcendental-heavy softmax/GELU/norm work), so their MACs cost a
 * fraction of a scalar-equivalent op.
 */
constexpr double kVectorizedMacDiscount = 0.25;

} // namespace

WorkloadSpec
WorkloadSpec::prefill(const TransformerConfig& model, unsigned batch,
                      unsigned seqLen)
{
    LOCALUT_REQUIRE(batch >= 1 && seqLen >= 1, "degenerate prefill shape");
    WorkloadSpec spec;
    spec.model = model;
    spec.phase = WorkloadPhase::Prefill;
    spec.batch = batch;
    spec.seqLen = seqLen;
    return spec;
}

WorkloadSpec
WorkloadSpec::decode(const TransformerConfig& model, unsigned batch,
                     unsigned promptLen, unsigned steps)
{
    LOCALUT_REQUIRE(batch >= 1, "degenerate decode batch");
    LOCALUT_REQUIRE(steps >= 1, "decode needs at least one step");
    WorkloadSpec spec;
    spec.model = model;
    spec.phase = WorkloadPhase::Decode;
    spec.batch = batch;
    spec.seqLen = promptLen;
    spec.steps = steps;
    return spec;
}

WorkloadSpec
WorkloadSpec::decodeStep(const TransformerConfig& model, unsigned batch,
                         unsigned seqPos)
{
    // A decode step at position p is a one-step decode whose "prompt" is
    // the p tokens of context already cached: its host attention runs
    // over p + 1 tokens, matching term t = p - promptLen of a whole
    // decode()'s context loop.
    return decode(model, batch, seqPos, /*steps=*/1);
}

std::vector<WorkloadGemm>
workloadGemms(const WorkloadSpec& spec)
{
    const double layers = spec.model.layers;
    const std::size_t h = spec.model.hidden;
    const std::size_t f = spec.model.ffnHidden;

    // PIM GEMMs per layer: Q, K, V projections, output projection, FFN up
    // and down (paper Fig. 8).  Prefill folds batch * seq into N; decode
    // runs GEMV-like GEMMs with N = batch once per step.
    std::size_t n;
    double repeats;
    if (spec.phase == WorkloadPhase::Prefill) {
        n = static_cast<std::size_t>(spec.batch) * spec.seqLen;
        repeats = layers;
    } else {
        n = spec.batch;
        repeats = layers * spec.steps;
    }
    // QKV output rows group into attention heads, so sharded executions
    // align their boundaries to headDim (head-parallel attention).
    return {
        {h, h, n, 3.0 * repeats, "qkv", spec.model.headDim()},
        {h, h, n, repeats, "out_proj", 1},
        {f, h, n, repeats, "ffn_up", 1},
        {h, f, n, repeats, "ffn_down", 1},
    };
}

double
workloadHostOps(const WorkloadSpec& spec)
{
    const double layers = spec.model.layers;
    const std::size_t h = spec.model.hidden;
    const std::size_t f = spec.model.ffnHidden;

    if (spec.phase == WorkloadPhase::Prefill) {
        // Attention score (QK^T) and value (PV) products, softmax, two
        // layer norms, GELU, residual adds.
        const double tokens =
            static_cast<double>(spec.batch) * spec.seqLen;
        const double s = spec.seqLen;
        const double attnMacs = 2.0 * spec.batch * spec.model.heads * s *
                                s * spec.model.headDim();
        const double softmaxOps =
            kSoftmaxOpsPerElem * spec.batch * spec.model.heads * s * s;
        const double lnOps =
            2.0 * kLayerNormOpsPerElem * tokens * static_cast<double>(h);
        const double geluOps =
            kGeluOpsPerElem * tokens * static_cast<double>(f);
        const double resOps =
            2.0 * kResidualOpsPerElem * tokens * static_cast<double>(h);
        return layers * (2.0 * kVectorizedMacDiscount * attnMacs +
                         softmaxOps + lnOps + geluOps + resOps);
    }

    // Decode: host attention runs against the KV context, which grows
    // from the prompt across the generated steps.
    double attnOps = 0.0;
    for (unsigned t = 0; t < spec.steps; ++t) {
        const double ctx = spec.seqLen + t + 1;
        attnOps += 2.0 * 2.0 * kVectorizedMacDiscount * spec.batch *
                   spec.model.heads * ctx * spec.model.headDim();
        attnOps += kSoftmaxOpsPerElem * spec.batch * spec.model.heads * ctx;
    }
    const double tokens = static_cast<double>(spec.batch) * spec.steps;
    const double lnOps =
        2.0 * kLayerNormOpsPerElem * tokens * static_cast<double>(h);
    const double geluOps =
        kGeluOpsPerElem * tokens * static_cast<double>(f);
    const double resOps =
        2.0 * kResidualOpsPerElem * tokens * static_cast<double>(h);
    return layers * (attnOps + lnOps + geluOps + resOps);
}

InferenceReport
executeWorkload(const Backend& backend,
                const std::vector<PlannedGemm>& nodes,
                const QuantConfig& quant, double hostOps,
                const ExecOptions& options)
{
    ExecOptions nodeOptions = options;
    nodeOptions.computeValues = false; // workload nodes are shape-only
    nodeOptions.prepared = nullptr;
    InferenceReport report;
    for (const PlannedGemm& node : nodes) {
        const GemmProblem problem = makeShapeOnlyProblem(
            node.gemm.m, node.gemm.k, node.gemm.n, quant);
        const GemmResult r =
            backend.execute(problem, node.plan, nodeOptions);
        accumulate(report.timing, r.timing, node.gemm.count);
        accumulate(report.energy, r.energy, node.gemm.count);
        report.gemmSeconds += r.timing.total * node.gemm.count;
    }
    TimingReport hostTiming;
    EnergyReport hostEnergy;
    backend.chargeHostOps(hostOps, hostTiming, hostEnergy);
    accumulate(report.timing, hostTiming);
    accumulate(report.energy, hostEnergy);
    report.hostOpSeconds += hostTiming.total;
    return report;
}

WorkloadCostProjection
projectWorkloadCost(const Backend& backend,
                    const std::vector<PlannedGemm>& nodes,
                    const QuantConfig& quant, double hostOps)
{
    const InferenceReport report =
        executeWorkload(backend, nodes, quant, hostOps);
    return {report.gemmSeconds, report.hostOpSeconds,
            report.collectiveSeconds};
}

} // namespace localut
