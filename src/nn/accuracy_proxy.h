#ifndef LOCALUT_NN_ACCURACY_PROXY_H_
#define LOCALUT_NN_ACCURACY_PROXY_H_

/**
 * @file
 * Synthetic-task accuracy harness substituting the paper's GLUE/ImageNet
 * accuracy studies (Fig. 15, Fig. 21b) — see DESIGN.md Section 1 for the
 * substitution argument.  A frozen random two-layer feature extractor runs
 * over a Gaussian-cluster classification dataset; each method (fp32,
 * LoCaLUT quantized arithmetic, PQ baselines, fp16-rounded floating-point
 * LUTs) produces features through its own numerics, trains its own ridge
 * readout, and is scored on held-out accuracy.  The mechanism under test —
 * PQ approximation error vs. exact quantized arithmetic, and fp16 LUT
 * entry rounding with/without reordering — is exactly the paper's.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "baselines/pq_gemm.h"
#include "quant/quantizer.h"

namespace localut {

/** Proxy task configuration. */
struct ProxyTaskConfig {
    unsigned dim = 64;       ///< input dimensionality
    unsigned classes = 4;
    unsigned trainSamples = 384;
    unsigned testSamples = 384;
    unsigned hidden = 64;    ///< feature width of both layers
    double clusterSpread = 0.9; ///< noise vs. unit-separated class means
    float ridgeLambda = 1.0f;
    std::uint64_t seed = 2026;
};

/** One method's score. */
struct ProxyScore {
    double accuracy = 0;   ///< held-out classification accuracy
    double featureMse = 0; ///< feature deviation vs. the fp32 pipeline
};

/** The accuracy-proxy experiment. */
class AccuracyProxy
{
  public:
    explicit AccuracyProxy(const ProxyTaskConfig& config);

    /** Full-precision reference pipeline. */
    ProxyScore evaluateFp32() const;

    /**
     * LoCaLUT / quantized-arithmetic pipeline: weights quantized offline,
     * activations per tensor, exact integer GEMMs (all LUT design points
     * produce identical values, so this is the accuracy of every one).
     */
    ProxyScore evaluateQuantized(const QuantConfig& config) const;

    /** PQ pipeline (PIM-DL / LUT-DLA): codebook-approximated GEMMs. */
    ProxyScore evaluatePq(const PqParams& params) const;

    /**
     * Floating-point symbol pipeline (Fig. 21b): canonical-LUT execution
     * with fp16-rounded entries at packing degree @p p, with or without
     * the reordering LUT (@p reorder false = OP ordering).
     */
    ProxyScore evaluateFpLut(const QuantConfig& config, unsigned p,
                             bool reorder) const;

  private:
    std::vector<float> features(
        const std::vector<float>& x, std::size_t samples,
        const std::function<std::vector<float>(
            const std::vector<float>&, const std::vector<float>&,
            std::size_t, std::size_t, std::size_t)>& gemm) const;

    ProxyScore scoreFeatures(const std::vector<float>& trainF,
                             const std::vector<float>& testF) const;

    ProxyTaskConfig config_;
    std::vector<float> trainX_, testX_;
    std::vector<std::uint32_t> trainY_, testY_;
    std::vector<float> w1_, w2_; ///< frozen feature-extractor weights
    std::vector<float> fp32TrainF_, fp32TestF_;
};

} // namespace localut

#endif // LOCALUT_NN_ACCURACY_PROXY_H_
