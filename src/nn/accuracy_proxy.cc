#include "nn/accuracy_proxy.h"

#include <cmath>

#include "common/linalg.h"
#include "common/logging.h"
#include "common/rng.h"
#include "kernels/functional.h"
#include "kernels/gemm.h"

namespace localut {

namespace {

float
gelu(float x)
{
    const float c = 0.7978845608f; // sqrt(2/pi)
    return 0.5f * x *
           (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

void
geluInPlace(std::vector<float>& v)
{
    for (auto& x : v) {
        x = gelu(x);
    }
}

} // namespace

AccuracyProxy::AccuracyProxy(const ProxyTaskConfig& config)
    : config_(config)
{
    Rng rng(config.seed);
    const unsigned d = config.dim;

    // Class means: random unit-scale directions.
    std::vector<float> means(static_cast<std::size_t>(config.classes) * d);
    for (auto& v : means) {
        v = static_cast<float>(rng.nextGaussian());
    }

    auto sample = [&](std::vector<float>& x,
                      std::vector<std::uint32_t>& y, unsigned n) {
        x.resize(static_cast<std::size_t>(n) * d);
        y.resize(n);
        for (unsigned i = 0; i < n; ++i) {
            const std::uint32_t cls =
                static_cast<std::uint32_t>(rng.nextBounded(config.classes));
            y[i] = cls;
            for (unsigned j = 0; j < d; ++j) {
                x[static_cast<std::size_t>(i) * d + j] =
                    means[cls * d + j] +
                    static_cast<float>(config.clusterSpread *
                                       rng.nextGaussian());
            }
        }
    };
    sample(trainX_, trainY_, config.trainSamples);
    sample(testX_, testY_, config.testSamples);

    // Frozen feature extractor, scaled for unit-variance activations.
    const unsigned h = config.hidden;
    w1_.resize(static_cast<std::size_t>(h) * d);
    for (auto& v : w1_) {
        v = static_cast<float>(rng.nextGaussian() / std::sqrt(double(d)));
    }
    w2_.resize(static_cast<std::size_t>(h) * h);
    for (auto& v : w2_) {
        v = static_cast<float>(rng.nextGaussian() / std::sqrt(double(h)));
    }

    auto fp32Gemm = [](const std::vector<float>& w,
                       const std::vector<float>& a, std::size_t m,
                       std::size_t k, std::size_t n) {
        return matmul(w, a, m, k, n);
    };
    fp32TrainF_ = features(trainX_, config.trainSamples, fp32Gemm);
    fp32TestF_ = features(testX_, config.testSamples, fp32Gemm);
}

std::vector<float>
AccuracyProxy::features(
    const std::vector<float>& x, std::size_t samples,
    const std::function<std::vector<float>(
        const std::vector<float>&, const std::vector<float>&, std::size_t,
        std::size_t, std::size_t)>& gemm) const
{
    const unsigned d = config_.dim;
    const unsigned h = config_.hidden;
    // A = X^T (d x samples).
    std::vector<float> a(static_cast<std::size_t>(d) * samples);
    for (std::size_t i = 0; i < samples; ++i) {
        for (unsigned j = 0; j < d; ++j) {
            a[static_cast<std::size_t>(j) * samples + i] = x[i * d + j];
        }
    }
    std::vector<float> h1 = gemm(w1_, a, h, d, samples);
    geluInPlace(h1);
    std::vector<float> h2 = gemm(w2_, h1, h, h, samples);
    geluInPlace(h2);
    // Features = H2^T (samples x h).
    std::vector<float> f(samples * h);
    for (std::size_t i = 0; i < samples; ++i) {
        for (unsigned j = 0; j < h; ++j) {
            f[i * h + j] = h2[static_cast<std::size_t>(j) * samples + i];
        }
    }
    return f;
}

ProxyScore
AccuracyProxy::scoreFeatures(const std::vector<float>& trainF,
                             const std::vector<float>& testF) const
{
    const unsigned h = config_.hidden;
    const unsigned hb = h + 1; // bias column
    const unsigned classes = config_.classes;
    const std::size_t nTrain = config_.trainSamples;
    const std::size_t nTest = config_.testSamples;

    auto withBias = [&](const std::vector<float>& f, std::size_t n) {
        std::vector<float> fb(n * hb);
        for (std::size_t i = 0; i < n; ++i) {
            std::copy(f.begin() + static_cast<std::ptrdiff_t>(i * h),
                      f.begin() + static_cast<std::ptrdiff_t>((i + 1) * h),
                      fb.begin() + static_cast<std::ptrdiff_t>(i * hb));
            fb[i * hb + h] = 1.0f;
        }
        return fb;
    };
    const std::vector<float> ftr = withBias(trainF, nTrain);
    const std::vector<float> fte = withBias(testF, nTest);

    // Normal equations: (F^T F + lambda) beta = F^T Y.
    std::vector<float> gram(static_cast<std::size_t>(hb) * hb, 0.0f);
    for (std::size_t i = 0; i < nTrain; ++i) {
        for (unsigned r = 0; r < hb; ++r) {
            const float fr = ftr[i * hb + r];
            if (fr == 0.0f) {
                continue;
            }
            for (unsigned c = 0; c < hb; ++c) {
                gram[static_cast<std::size_t>(r) * hb + c] +=
                    fr * ftr[i * hb + c];
            }
        }
    }
    std::vector<float> rhs(static_cast<std::size_t>(hb) * classes, 0.0f);
    for (std::size_t i = 0; i < nTrain; ++i) {
        for (unsigned r = 0; r < hb; ++r) {
            rhs[static_cast<std::size_t>(r) * classes + trainY_[i]] +=
                ftr[i * hb + r];
        }
    }
    const std::vector<float> beta =
        solveSpd(gram, rhs, hb, classes, config_.ridgeLambda);

    unsigned correct = 0;
    for (std::size_t i = 0; i < nTest; ++i) {
        unsigned best = 0;
        float bestScore = -1e30f;
        for (unsigned c = 0; c < classes; ++c) {
            float s = 0.0f;
            for (unsigned r = 0; r < hb; ++r) {
                s += fte[i * hb + r] *
                     beta[static_cast<std::size_t>(r) * classes + c];
            }
            if (s > bestScore) {
                bestScore = s;
                best = c;
            }
        }
        if (best == testY_[i]) {
            ++correct;
        }
    }

    ProxyScore score;
    score.accuracy =
        100.0 * static_cast<double>(correct) / static_cast<double>(nTest);
    double mse = 0.0;
    for (std::size_t i = 0; i < testF.size(); ++i) {
        const double diff = testF[i] - fp32TestF_[i];
        mse += diff * diff;
    }
    score.featureMse = mse / static_cast<double>(testF.size());
    return score;
}

ProxyScore
AccuracyProxy::evaluateFp32() const
{
    return scoreFeatures(fp32TrainF_, fp32TestF_);
}

ProxyScore
AccuracyProxy::evaluateQuantized(const QuantConfig& config) const
{
    auto clipQuant = [](const std::vector<float>& data, std::size_t r,
                        std::size_t c, ValueCodec codec) {
        // Clip at the ACIQ-recommended range for multi-bit integer codecs
        // (the prior-art quantizers the paper adopts all clip); sign-only
        // codecs quantize plainly.
        if (codec.isInteger() && codec.bits() >= 2) {
            return Quantizer::quantizeClipped(
                data, r, c, codec,
                Quantizer::recommendedClipStds(codec.bits()));
        }
        return Quantizer::quantize(data, r, c, codec);
    };
    auto gemm = [&](const std::vector<float>& w, const std::vector<float>& a,
                    std::size_t m, std::size_t k, std::size_t n) {
        GemmProblem problem;
        problem.w = clipQuant(w, m, k, config.weightCodec);
        problem.a = clipQuant(a, k, n, config.actCodec);
        const auto raw = referenceGemmInt(problem.w, problem.a);
        std::vector<float> out(raw.size());
        const float scale = problem.w.scale * problem.a.scale;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            out[i] = static_cast<float>(raw[i]) * scale;
        }
        return out;
    };
    const auto trainF = features(trainX_, config_.trainSamples, gemm);
    const auto testF = features(testX_, config_.testSamples, gemm);
    return scoreFeatures(trainF, testF);
}

ProxyScore
AccuracyProxy::evaluatePq(const PqParams& params) const
{
    const PqGemmEngine engine(PimSystemConfig::upmemServer(), params);
    auto gemm = [&](const std::vector<float>& w, const std::vector<float>& a,
                    std::size_t m, std::size_t k, std::size_t n) {
        return engine.run(w, a, m, k, n).out;
    };
    const auto trainF = features(trainX_, config_.trainSamples, gemm);
    const auto testF = features(testX_, config_.testSamples, gemm);
    return scoreFeatures(trainF, testF);
}

ProxyScore
AccuracyProxy::evaluateFpLut(const QuantConfig& config, unsigned p,
                             bool reorder) const
{
    auto gemm = [&](const std::vector<float>& w, const std::vector<float>& a,
                    std::size_t m, std::size_t k, std::size_t n) {
        GemmProblem problem;
        problem.w = Quantizer::quantize(w, m, k, config.weightCodec);
        problem.a = Quantizer::quantize(a, k, n, config.actCodec);
        const float scale = problem.w.scale * problem.a.scale;
        // Explicit reordering is numerically identical to the reordering
        // LUT (verified by the kernel tests) and avoids materializing the
        // huge tables of large-p sweeps; opFloatVirtual matches the
        // operation-packed LUT the same way.
        std::vector<float> out =
            reorder ? functional::canonicalFloat(
                          problem, p, functional::ReorderMode::Explicit)
                    : functional::opFloatVirtual(problem, p);
        for (auto& v : out) {
            v *= scale;
        }
        return out;
    };
    const auto trainF = features(trainX_, config_.trainSamples, gemm);
    const auto testF = features(testX_, config_.testSamples, gemm);
    return scoreFeatures(trainF, testF);
}

} // namespace localut
