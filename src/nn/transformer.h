#ifndef LOCALUT_NN_TRANSFORMER_H_
#define LOCALUT_NN_TRANSFORMER_H_

/**
 * @file
 * Transformer model configurations matching the paper's workloads
 * (Section VI-A): BERT-base (encoder-only), OPT-125M (decoder-only), and
 * ViT-Base (vision; patches as tokens).
 */

#include <cstddef>
#include <string>

namespace localut {

/** Architecture of one transformer stack. */
struct TransformerConfig {
    std::string name;
    unsigned layers = 12;
    unsigned hidden = 768;
    unsigned heads = 12;
    unsigned ffnHidden = 3072;
    unsigned defaultSeqLen = 128;

    unsigned headDim() const { return hidden / heads; }

    /**
     * Raw bytes one token's K and V vectors add to one layer's KV-cache
     * at @p bitsPerValue quantization (2 * hidden values, rounded up to
     * whole bytes).  The serving layer multiplies by layers and context
     * length to size a stream's MRAM-resident KV state
     * (serving/residency.h).
     */
    std::size_t
    kvBytesPerTokenPerLayer(unsigned bitsPerValue) const
    {
        return (2ull * hidden * bitsPerValue + 7) / 8;
    }

    /** Parameter count of the transformer stack (no embeddings). */
    std::size_t
    parameterCount() const
    {
        // Per layer: QKV (3 H^2) + out proj (H^2) + FFN (2 H F) + biases.
        const std::size_t h = hidden, f = ffnHidden;
        return static_cast<std::size_t>(layers) *
               (4 * h * h + 2 * h * f + 9 * h + f);
    }

    /** BERT-base: 12 x 768, GLUE max length 128 (paper Section VI-A). */
    static TransformerConfig bertBase();

    /** OPT-125M: decoder-only, same stack dimensions as BERT-base. */
    static TransformerConfig opt125m();

    /** ViT-Base: 196 patch tokens + [CLS]. */
    static TransformerConfig vitBase();
};

} // namespace localut

#endif // LOCALUT_NN_TRANSFORMER_H_
