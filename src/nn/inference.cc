#include "nn/inference.h"

#include "common/logging.h"

namespace localut {

namespace {

/** Host scalar-op estimates for the non-GEMM transformer work. */
constexpr double kLayerNormOpsPerElem = 8.0;
constexpr double kGeluOpsPerElem = 8.0;
constexpr double kSoftmaxOpsPerElem = 10.0;
constexpr double kResidualOpsPerElem = 1.0;
/**
 * Dense attention score/value products vectorize on AVX-512 (unlike the
 * transcendental-heavy softmax/GELU/norm work), so their MACs cost a
 * fraction of a scalar-equivalent op.
 */
constexpr double kVectorizedMacDiscount = 0.25;

} // namespace

GemmProblem
makeShapeOnlyProblem(std::size_t m, std::size_t k, std::size_t n,
                     const QuantConfig& config)
{
    GemmProblem problem;
    problem.w.rows = m;
    problem.w.cols = k;
    problem.w.codec = config.weightCodec;
    problem.a.rows = k;
    problem.a.cols = n;
    problem.a.codec = config.actCodec;
    return problem;
}

TransformerRunner::TransformerRunner(const PimSystemConfig& system,
                                     const QuantConfig& quant,
                                     DesignPoint design,
                                     const PlanOverrides& overrides)
    : system_(system), quant_(quant), design_(design),
      overrides_(overrides), engine_(system)
{}

void
TransformerRunner::addGemm(InferenceReport& report, std::size_t m,
                           std::size_t k, std::size_t n, double count) const
{
    const GemmProblem problem = makeShapeOnlyProblem(m, k, n, quant_);
    const GemmResult r =
        engine_.run(problem, design_, /*computeValues=*/false, overrides_);
    accumulate(report.timing, r.timing, count);
    accumulate(report.energy, r.energy, count);
    report.gemmSeconds += r.timing.total * count;
}

void
TransformerRunner::addHostOps(InferenceReport& report, double ops) const
{
    KernelCost cost;
    cost.addHostOps(Phase::HostOther, ops);
    const CostEvaluator eval(system_);
    const TimingReport t = eval.timing(cost, 1);
    const EnergyReport e = eval.energy(cost, 1);
    accumulate(report.timing, t);
    accumulate(report.energy, e);
    report.hostOpSeconds += t.total;
}

InferenceReport
TransformerRunner::prefill(const TransformerConfig& model, unsigned batch,
                           unsigned seqLen) const
{
    LOCALUT_REQUIRE(batch >= 1 && seqLen >= 1, "degenerate prefill shape");
    InferenceReport report;
    const double layers = model.layers;
    const std::size_t h = model.hidden;
    const std::size_t f = model.ffnHidden;
    const std::size_t tokens =
        static_cast<std::size_t>(batch) * seqLen; // GEMM N dimension

    // PIM GEMMs per layer: Q, K, V projections, output projection, FFN
    // up and down (paper Fig. 8).
    addGemm(report, h, h, tokens, 3.0 * layers); // QKV
    addGemm(report, h, h, tokens, layers);       // out proj
    addGemm(report, f, h, tokens, layers);       // FFN up
    addGemm(report, h, f, tokens, layers);       // FFN down

    // Host work per layer: attention score (QK^T) and value (PV) products,
    // softmax, two layer norms, GELU, residual adds.
    const double s = seqLen;
    const double attnMacs =
        2.0 * batch * model.heads * s * s * model.headDim();
    const double softmaxOps =
        kSoftmaxOpsPerElem * batch * model.heads * s * s;
    const double lnOps =
        2.0 * kLayerNormOpsPerElem * static_cast<double>(tokens) * h;
    const double geluOps =
        kGeluOpsPerElem * static_cast<double>(tokens) * f;
    const double resOps =
        2.0 * kResidualOpsPerElem * static_cast<double>(tokens) * h;
    addHostOps(report,
               layers * (2.0 * kVectorizedMacDiscount * attnMacs +
                         softmaxOps + lnOps + geluOps + resOps));
    return report;
}

InferenceReport
TransformerRunner::decode(const TransformerConfig& model, unsigned batch,
                          unsigned promptLen, unsigned steps) const
{
    LOCALUT_REQUIRE(steps >= 1, "decode needs at least one step");
    InferenceReport report;
    const double layers = model.layers;
    const std::size_t h = model.hidden;
    const std::size_t f = model.ffnHidden;

    // Per step, every layer runs GEMV-like GEMMs with N = batch.
    addGemm(report, h, h, batch, 3.0 * layers * steps); // QKV
    addGemm(report, h, h, batch, layers * steps);       // out proj
    addGemm(report, f, h, batch, layers * steps);       // FFN up
    addGemm(report, h, f, batch, layers * steps);       // FFN down

    // Host attention against the growing KV context.
    double attnOps = 0.0;
    for (unsigned t = 0; t < steps; ++t) {
        const double ctx = promptLen + t + 1;
        attnOps += 2.0 * 2.0 * kVectorizedMacDiscount * batch *
                   model.heads * ctx * model.headDim();
        attnOps += kSoftmaxOpsPerElem * batch * model.heads * ctx;
    }
    const double tokens = static_cast<double>(batch) * steps;
    const double lnOps = 2.0 * kLayerNormOpsPerElem * tokens * h;
    const double geluOps = kGeluOpsPerElem * tokens * f;
    const double resOps = 2.0 * kResidualOpsPerElem * tokens * h;
    addHostOps(report,
               layers * (attnOps + lnOps + geluOps + resOps));
    return report;
}

} // namespace localut
