#include "nn/inference.h"

#include <utility>

#include "backend/upmem_backend.h"
#include "common/logging.h"

namespace localut {

GemmProblem
makeShapeOnlyProblem(std::size_t m, std::size_t k, std::size_t n,
                     const QuantConfig& config)
{
    GemmProblem problem;
    problem.w.rows = m;
    problem.w.cols = k;
    problem.w.codec = config.weightCodec;
    problem.a.rows = k;
    problem.a.cols = n;
    problem.a.codec = config.actCodec;
    return problem;
}

TransformerRunner::TransformerRunner(const PimSystemConfig& system,
                                     const QuantConfig& quant,
                                     DesignPoint design,
                                     const PlanOverrides& overrides)
    : TransformerRunner(std::make_shared<const UpmemBackend>(system), quant,
                        design, overrides)
{}

TransformerRunner::TransformerRunner(BackendPtr backend,
                                     const QuantConfig& quant,
                                     DesignPoint design,
                                     const PlanOverrides& overrides)
    : backend_(std::move(backend)), quant_(quant), design_(design),
      overrides_(overrides)
{
    LOCALUT_REQUIRE(backend_ != nullptr, "TransformerRunner needs a backend");
}

InferenceReport
TransformerRunner::run(const WorkloadSpec& spec) const
{
    std::vector<PlannedGemm> nodes;
    for (const WorkloadGemm& gemm : workloadGemms(spec)) {
        const GemmProblem problem =
            makeShapeOnlyProblem(gemm.m, gemm.k, gemm.n, quant_);
        nodes.push_back(
            {gemm, cache_.planFor(*backend_, problem, design_, overrides_)});
    }
    return executeWorkload(*backend_, nodes, quant_,
                           workloadHostOps(spec));
}

InferenceReport
TransformerRunner::prefill(const TransformerConfig& model, unsigned batch,
                           unsigned seqLen) const
{
    return run(WorkloadSpec::prefill(model, batch, seqLen));
}

InferenceReport
TransformerRunner::decode(const TransformerConfig& model, unsigned batch,
                          unsigned promptLen, unsigned steps) const
{
    return run(WorkloadSpec::decode(model, batch, promptLen, steps));
}

} // namespace localut
