#ifndef LOCALUT_NN_INFERENCE_H_
#define LOCALUT_NN_INFERENCE_H_

/**
 * @file
 * End-to-end transformer inference on a PIM backend (paper Section V-B,
 * Fig. 8): every matrix multiplication (QKV projections, output
 * projection, FFN) runs on the backend under a chosen design point;
 * softmax, layer norm, GELU, attention score/value products, and
 * quantize/dequantize run on the host.  Prefill and decode phases are
 * modeled separately (Fig. 19a); batching folds into the GEMM N dimension
 * (Fig. 19b).
 *
 * The phase contents come from nn/workload.h, and repeated shapes are
 * planned once through a PlanCache — the same machinery the serving-layer
 * InferenceSession (serving/session.h) uses for batched asynchronous
 * request execution.
 */

#include "backend/backend.h"
#include "kernels/gemm.h"
#include "nn/transformer.h"
#include "nn/workload.h"
#include "serving/plan_cache.h"

namespace localut {

/** Runs transformer phases under one design point / quantization config. */
class TransformerRunner
{
  public:
    /** Runs on the UPMEM server model built from @p system. */
    TransformerRunner(const PimSystemConfig& system,
                      const QuantConfig& quant, DesignPoint design,
                      const PlanOverrides& overrides = {});

    /** Runs on any backend. */
    TransformerRunner(BackendPtr backend, const QuantConfig& quant,
                      DesignPoint design,
                      const PlanOverrides& overrides = {});

    /**
     * Prefill: all tokens at once; GEMM N = batch * seqLen.
     * Encoder-only models (BERT, ViT) are prefill-only.
     */
    InferenceReport prefill(const TransformerConfig& model, unsigned batch,
                            unsigned seqLen) const;

    /**
     * Decode: one token per step per sequence; GEMM N = batch.  Attention
     * context grows from @p promptLen across @p steps.
     */
    InferenceReport decode(const TransformerConfig& model, unsigned batch,
                           unsigned promptLen, unsigned steps) const;

    /** Runs one workload phase (what prefill()/decode() build). */
    InferenceReport run(const WorkloadSpec& spec) const;

  private:
    BackendPtr backend_;
    QuantConfig quant_;
    DesignPoint design_;
    PlanOverrides overrides_;
    mutable PlanCache cache_; ///< decode steps reuse per-shape plans
};

/** Shape-only problem (empty codes) for timing runs. */
GemmProblem makeShapeOnlyProblem(std::size_t m, std::size_t k,
                                 std::size_t n, const QuantConfig& config);

} // namespace localut

#endif // LOCALUT_NN_INFERENCE_H_
