#ifndef LOCALUT_NN_INFERENCE_H_
#define LOCALUT_NN_INFERENCE_H_

/**
 * @file
 * End-to-end transformer inference on the PIM system (paper Section V-B,
 * Fig. 8): every matrix multiplication (QKV projections, output
 * projection, FFN) runs on the PIM banks under a chosen design point;
 * softmax, layer norm, GELU, attention score/value products, and
 * quantize/dequantize run on the host.  Prefill and decode phases are
 * modeled separately (Fig. 19a); batching folds into the GEMM N dimension
 * (Fig. 19b).
 */

#include "kernels/gemm.h"
#include "nn/transformer.h"

namespace localut {

/** Aggregated end-to-end execution report. */
struct InferenceReport {
    TimingReport timing;
    EnergyReport energy;
    double gemmSeconds = 0;  ///< PIM GEMM portion (kernel + its host/link)
    double hostOpSeconds = 0;///< non-GEMM host work
};

/** Runs transformer phases under one design point / quantization config. */
class TransformerRunner
{
  public:
    TransformerRunner(const PimSystemConfig& system,
                      const QuantConfig& quant, DesignPoint design,
                      const PlanOverrides& overrides = {});

    /**
     * Prefill: all tokens at once; GEMM N = batch * seqLen.
     * Encoder-only models (BERT, ViT) are prefill-only.
     */
    InferenceReport prefill(const TransformerConfig& model, unsigned batch,
                            unsigned seqLen) const;

    /**
     * Decode: one token per step per sequence; GEMM N = batch.  Attention
     * context grows from @p promptLen across @p steps.
     */
    InferenceReport decode(const TransformerConfig& model, unsigned batch,
                           unsigned promptLen, unsigned steps) const;

  private:
    /** Timing/energy of one GEMM shape, repeated @p count times. */
    void addGemm(InferenceReport& report, std::size_t m, std::size_t k,
                 std::size_t n, double count) const;

    /** Charges non-GEMM host work (attention, softmax, norms, GELU). */
    void addHostOps(InferenceReport& report, double ops) const;

    PimSystemConfig system_;
    QuantConfig quant_;
    DesignPoint design_;
    PlanOverrides overrides_;
    GemmEngine engine_;
};

/** Shape-only problem (empty codes) for timing runs. */
GemmProblem makeShapeOnlyProblem(std::size_t m, std::size_t k,
                                 std::size_t n, const QuantConfig& config);

} // namespace localut

#endif // LOCALUT_NN_INFERENCE_H_
