#include "nn/transformer.h"

namespace localut {

TransformerConfig
TransformerConfig::bertBase()
{
    TransformerConfig c;
    c.name = "BERT-base";
    c.layers = 12;
    c.hidden = 768;
    c.heads = 12;
    c.ffnHidden = 3072;
    c.defaultSeqLen = 128;
    return c;
}

TransformerConfig
TransformerConfig::opt125m()
{
    TransformerConfig c;
    c.name = "OPT-125M";
    c.layers = 12;
    c.hidden = 768;
    c.heads = 12;
    c.ffnHidden = 3072;
    c.defaultSeqLen = 128;
    return c;
}

TransformerConfig
TransformerConfig::vitBase()
{
    TransformerConfig c;
    c.name = "ViT-Base";
    c.layers = 12;
    c.hidden = 768;
    c.heads = 12;
    c.ffnHidden = 3072;
    c.defaultSeqLen = 197; // 196 patches + [CLS]
    return c;
}

} // namespace localut
