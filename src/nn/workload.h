#ifndef LOCALUT_NN_WORKLOAD_H_
#define LOCALUT_NN_WORKLOAD_H_

/**
 * @file
 * Workload description: the GEMM shapes and host-op counts of one
 * transformer phase (paper Fig. 8 execution flow, Fig. 19 scenarios).
 * This enumeration is the single source of truth shared by the
 * synchronous TransformerRunner (nn/inference.h) and the InferenceSession
 * workload compiler (serving/session.h), so the two paths can never
 * disagree about what a phase executes.
 */

#include <cstddef>
#include <vector>

#include "backend/backend.h"
#include "kernels/exec_engine.h"
#include "nn/transformer.h"

namespace localut {

/** Which phase of autoregressive execution a workload models. */
enum class WorkloadPhase {
    Prefill, ///< all tokens at once; GEMM N = batch * seqLen
    Decode,  ///< one token per step per sequence; GEMM N = batch
};

/** One transformer phase over one model (the unit a session compiles). */
struct WorkloadSpec {
    TransformerConfig model;
    WorkloadPhase phase = WorkloadPhase::Prefill;
    unsigned batch = 1;
    unsigned seqLen = 128;    ///< prefill: sequence length; decode: prompt
    unsigned steps = 1;       ///< decode steps (ignored for prefill)

    /** Prefill of @p batch sequences of @p seqLen tokens. */
    static WorkloadSpec prefill(const TransformerConfig& model,
                                unsigned batch, unsigned seqLen);

    /** Decode of @p steps tokens against a @p promptLen-token context. */
    static WorkloadSpec decode(const TransformerConfig& model,
                               unsigned batch, unsigned promptLen,
                               unsigned steps);

    /**
     * One decode step of @p batch sequences sitting at sequence position
     * @p seqPos (i.e. @p seqPos tokens of context already exist; the
     * step attends over seqPos + 1 tokens).  Exactly
     * decode(model, batch, seqPos, 1): the per-token unit the token
     * engine (serving/token_engine.h) re-batches every step, so a
     * token-by-token decode sums to the whole-workload decode() cost —
     * workloadGemms() shapes are position-independent and
     * workloadHostOps() is the matching single term of decode()'s
     * context loop.
     */
    static WorkloadSpec decodeStep(const TransformerConfig& model,
                                   unsigned batch, unsigned seqPos);
};

/** One distinct PIM GEMM shape of a workload, with its repeat count. */
struct WorkloadGemm {
    std::size_t m = 0, k = 0, n = 0;
    double count = 1;        ///< executions across layers (and steps)
    const char* role = "";   ///< "qkv", "out_proj", "ffn_up", "ffn_down"
    /**
     * Output rows group into units this wide (the attention head size for
     * QKV projections, 1 elsewhere).  A sharded execution must not split
     * a group across ranks: aligning QKV shard boundaries to heads is
     * what makes column-parallel sharding head-parallel for attention.
     */
    std::size_t rowAlign = 1;
};

/** The PIM GEMM shapes of @p spec (paper Fig. 8: QKV, out proj, FFN). */
std::vector<WorkloadGemm> workloadGemms(const WorkloadSpec& spec);

/**
 * Scalar-equivalent host operations of @p spec: attention score/value
 * products, softmax, layer norms, GELU, residual adds — everything the
 * PIM offload leaves on the host.
 */
double workloadHostOps(const WorkloadSpec& spec);

/** Aggregated end-to-end execution report. */
struct InferenceReport {
    TimingReport timing;
    EnergyReport energy;
    double gemmSeconds = 0;  ///< PIM GEMM portion (kernel + its host/link)
    double hostOpSeconds = 0;///< non-GEMM host work
    double collectiveSeconds = 0; ///< sharded all-gather/reduce transfers
    /** Share of collectiveSeconds spent on the CXL inter-node tier
     * (cross-node collective hops and pipeline-stage activation
     * transfers); 0 on a single-node topology. */
    double interNodeSeconds = 0;
    /** Host -> PIM LUT table broadcasts charged by the residency manager
     * (serving/residency.h); 0 when every table set was already resident
     * (steady state) or residency is disabled. */
    double lutBroadcastSeconds = 0;

    /** True when this request paid any first-touch table broadcast. */
    bool coldStart() const { return lutBroadcastSeconds > 0; }

    /** End-to-end seconds excluding the one-time table broadcasts — the
     * steady-state (warm) cost of re-running the same request. */
    double steadySeconds() const
    {
        return timing.total - lutBroadcastSeconds;
    }
};

/** A workload GEMM bound to its resolved execution plan. */
struct PlannedGemm {
    WorkloadGemm gemm;
    GemmPlan plan;
};

/**
 * Modeled steady-state cost of serving one request of a compiled
 * workload — the per-request projection the SLO scheduler's admission
 * control runs against (serving/scheduler.h).  Derived from the same
 * chargeCosts() accounting that execution reports, so projection and
 * "measurement" agree exactly; cold-start LUT broadcasts are *not*
 * included (the scheduler adds them per placement rank).
 */
struct WorkloadCostProjection {
    double gemmSeconds = 0;       ///< PIM GEMM share
    double hostOpSeconds = 0;     ///< non-GEMM host work share
    double collectiveSeconds = 0; ///< sharded all-gather/reduce share

    /** End-to-end modeled seconds per request (sum of the shares). */
    double totalSeconds() const
    {
        return gemmSeconds + hostOpSeconds + collectiveSeconds;
    }
};

/**
 * Projects the steady-state per-request cost of executing @p nodes plus
 * @p hostOps host work on @p backend: exactly executeWorkload()'s
 * timing, without running a functional pass.
 */
WorkloadCostProjection
projectWorkloadCost(const Backend& backend,
                    const std::vector<PlannedGemm>& nodes,
                    const QuantConfig& quant, double hostOps);

/**
 * Executes planned GEMMs (timing-only) plus @p hostOps host work on
 * @p backend and aggregates the report.  The single execution path
 * behind both TransformerRunner and InferenceSession workloads.
 * @p options carries the execution knobs of kernels/exec_engine.h (its
 * computeValues is overridden to false: workload nodes are shape-only).
 */
InferenceReport executeWorkload(const Backend& backend,
                                const std::vector<PlannedGemm>& nodes,
                                const QuantConfig& quant, double hostOps,
                                const ExecOptions& options = {});

} // namespace localut

#endif // LOCALUT_NN_WORKLOAD_H_
