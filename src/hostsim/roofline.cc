#include "hostsim/roofline.h"

#include <algorithm>

#include "common/bitops.h"

namespace localut {

RooflineDevice
RooflineDevice::xeonGold5215()
{
    RooflineDevice d;
    d.name = "Xeon Gold 5215";
    // 10 cores x 2.5 GHz x 2 FMA ports x 16 fp32 lanes ~ 0.8 TMAC/s; the
    // quantized path runs through scalar/AVX2-style unpack + int32 MACs.
    d.peakOpsPerSec = 0.8e12;
    d.memBytesPerSec = 115e9; // 6 channels DDR4-2666
    d.efficiency = 0.35;
    d.unpackOpsPerMac = 4.0; // extract, sign-extend, widen per operand pair
    d.pcieBytesPerSec = 0;   // data host-resident
    d.watts = 85.0;
    return d;
}

RooflineDevice
RooflineDevice::rtx2080Ti()
{
    RooflineDevice d;
    d.name = "RTX 2080 Ti";
    // Sub-byte GEMM has no tensor-core path; it executes as dp4a/fp16 CUDA
    // core work after a per-operand extract/convert sequence.
    d.peakOpsPerSec = 13.45e12;
    d.memBytesPerSec = 616e9;
    d.efficiency = 0.35;
    d.unpackOpsPerMac = 6.0; // load, shift, mask, convert per operand pair
    d.pcieBytesPerSec = 11e9; // PCIe 3.0 x16 effective
    d.watts = 250.0;
    return d;
}

RooflineResult
rooflineGemm(const RooflineDevice& device, std::size_t m, std::size_t k,
             std::size_t n, unsigned bw, unsigned ba)
{
    const double macs = static_cast<double>(m) * k * n;
    const double opsPerMac = 1.0 + (bw < 8 || ba < 8
                                        ? device.unpackOpsPerMac
                                        : 0.0);
    double efficiency = device.efficiency;
    if (k < device.skinnyKThreshold) {
        efficiency *= device.skinnyKFactor;
    }
    RooflineResult r;
    r.computeSeconds =
        macs * opsPerMac / (device.peakOpsPerSec * efficiency);

    // Memory traffic: packed operands read once, fp32 output written once.
    const double bytes =
        static_cast<double>(bytesForBits(
            static_cast<std::uint64_t>(m) * k * bw)) +
        static_cast<double>(bytesForBits(
            static_cast<std::uint64_t>(k) * n * ba)) +
        static_cast<double>(m) * n * 4.0;
    r.memorySeconds = bytes / device.memBytesPerSec;

    if (device.pcieBytesPerSec > 0) {
        const double xfer =
            static_cast<double>(bytesForBits(
                static_cast<std::uint64_t>(k) * n * ba)) +
            static_cast<double>(m) * n * 4.0;
        r.transferSeconds = xfer / device.pcieBytesPerSec;
    }

    r.seconds = std::max(r.computeSeconds, r.memorySeconds) +
                r.transferSeconds;
    r.energyJ = r.seconds * device.watts;
    return r;
}

} // namespace localut
