#ifndef LOCALUT_HOSTSIM_ROOFLINE_H_
#define LOCALUT_HOSTSIM_ROOFLINE_H_

/**
 * @file
 * Roofline models of the conventional comparison devices in the paper's
 * Fig. 17 (Intel Xeon Gold 5215 CPU, NVIDIA RTX 2080 Ti GPU).  Neither
 * device has native sub-8-bit arithmetic, so low-bit GEMMs execute through
 * an unpack/dequantize path at int8/fp16 rate — which is exactly why their
 * execution time is flat across W1A3..W4A4 while LoCaLUT's scales with the
 * packing degree.  The GPU additionally pays PCIe transfers for inputs and
 * the (large) fp32 output.
 */

#include <cstddef>
#include <string>

namespace localut {

/** Roofline device description. */
struct RooflineDevice {
    std::string name;
    double peakOpsPerSec;  ///< sustained-peak MAC/s at its native precision
    double memBytesPerSec; ///< device memory bandwidth
    double efficiency;     ///< achievable fraction of peak on GEMM
    double unpackOpsPerMac;///< extra ALU ops to unpack sub-byte operands
    double pcieBytesPerSec;///< host link (0 = none, data already resident)
    double watts;          ///< busy power
    /**
     * GEMMs with a short reduction dimension reuse each loaded operand
     * few times, so both devices fall well below their dense-GEMM
     * efficiency (the Fig. 17 shape has K = 192).
     */
    unsigned skinnyKThreshold = 512;
    double skinnyKFactor = 0.5;

    /** Xeon Gold 5215 (10C/20T, AVX-512). */
    static RooflineDevice xeonGold5215();

    /** RTX 2080 Ti (Turing, dp4a/fp16 path for quantized GEMM). */
    static RooflineDevice rtx2080Ti();
};

/** Time/energy of one low-bit GEMM on a roofline device. */
struct RooflineResult {
    double seconds = 0;
    double computeSeconds = 0;
    double memorySeconds = 0;
    double transferSeconds = 0;
    double energyJ = 0;
};

/** Models O(MxN) = W(MxK) * A(KxN) with bw-bit weights, ba-bit acts. */
RooflineResult rooflineGemm(const RooflineDevice& device, std::size_t m,
                            std::size_t k, std::size_t n, unsigned bw,
                            unsigned ba);

} // namespace localut

#endif // LOCALUT_HOSTSIM_ROOFLINE_H_
