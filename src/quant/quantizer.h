#ifndef LOCALUT_QUANT_QUANTIZER_H_
#define LOCALUT_QUANT_QUANTIZER_H_

/**
 * @file
 * Uniform symmetric per-tensor quantization into codec symbols, the WxAy
 * preset configurations used throughout the paper's evaluation, and the
 * quantized-matrix container the kernels consume.
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "quant/codec.h"

namespace localut {

/**
 * A weight/activation bitwidth configuration (paper notation WxAy).
 *
 * Integer presets follow the paper's sources: 1-bit weights are signed
 * binary {-1,+1} (BinaryBERT), >= 2-bit weights and all integer activations
 * are two's complement.  Floating-point presets (Fig. 21) keep 1-bit
 * signed-binary weights and use FP4/FP8/FP16 activation symbols.
 */
struct QuantConfig {
    ValueCodec weightCodec;
    ValueCodec actCodec;

    unsigned bw() const { return weightCodec.bits(); }
    unsigned ba() const { return actCodec.bits(); }

    bool operator==(const QuantConfig&) const = default;

    /** "W1A3", "W1A4", "W2A2", "W4A4", "W1A8", "W1A16" ... */
    std::string name() const;

    /** Parses a preset name; fatals on unknown names. */
    static QuantConfig preset(const std::string& name);

    /** Floating-point preset: signed-binary or intN weights, fpY acts. */
    static QuantConfig fpPreset(unsigned bw, unsigned ba);

    /** All integer configs evaluated in Fig. 9/10/14: W1A3 W1A4 W2A2 W4A4. */
    static std::vector<QuantConfig> paperConfigs();
};

/** A quantized matrix: row-major codes plus the dequantization scale. */
struct QuantizedMatrix {
    std::size_t rows = 0;
    std::size_t cols = 0;
    ValueCodec codec = ValueCodec::signedBinary();
    std::vector<std::uint16_t> codes; ///< row-major, one symbol per element
    float scale = 1.0f;               ///< value = decode(code) * scale

    std::uint16_t
    at(std::size_t r, std::size_t c) const
    {
        return codes[r * cols + c];
    }

    /** Decoded numeric value (including scale). */
    float valueAt(std::size_t r, std::size_t c) const;

    /** Bytes when bit-packed at codec.bits() per element. */
    std::uint64_t packedBytes() const;
};

/** Uniform symmetric per-tensor quantizer. */
class Quantizer
{
  public:
    /**
     * Quantizes @p data (row-major rows x cols) with scale =
     * maxAbs / codec.maxAbsValue() (scale 1 when the input is all zero).
     */
    static QuantizedMatrix quantize(std::span<const float> data,
                                    std::size_t rows, std::size_t cols,
                                    ValueCodec codec);

    /**
     * ACIQ-style clipped symmetric quantization: the range is clipped at
     * clipStds standard deviations instead of the absolute maximum, which
     * is what makes aggressive (<= 4-bit) post-training quantization
     * usable — the prior-art quantizers the paper adopts all clip.
     */
    static QuantizedMatrix quantizeClipped(std::span<const float> data,
                                           std::size_t rows,
                                           std::size_t cols,
                                           ValueCodec codec, float clipStds);

    /** Recommended clip factor (stddevs) per bitwidth (ACIQ-style). */
    static float recommendedClipStds(unsigned bits);

    /** Dequantizes back to floats (size rows*cols). */
    static std::vector<float> dequantize(const QuantizedMatrix& qm);
};

/**
 * Reference integer GEMM on codes: out[m][n] = sum_k wDec(W[m][k]) *
 * aDec(A[k][n]).  This is the ground truth every LUT design point must
 * reproduce bit-exactly.
 */
std::vector<std::int32_t> referenceGemmInt(const QuantizedMatrix& w,
                                           const QuantizedMatrix& a);

/** Float-decode reference GEMM (for FP symbol configs). */
std::vector<float> referenceGemmFloat(const QuantizedMatrix& w,
                                      const QuantizedMatrix& a);

} // namespace localut

#endif // LOCALUT_QUANT_QUANTIZER_H_
