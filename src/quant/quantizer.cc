#include "quant/quantizer.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"

namespace localut {

std::string
QuantConfig::name() const
{
    std::string act = actCodec.isInteger()
                          ? std::to_string(ba())
                          : std::to_string(ba()); // fp configs share notation
    return "W" + std::to_string(bw()) + "A" + act;
}

QuantConfig
QuantConfig::preset(const std::string& name)
{
    auto intActs = [](unsigned ba) {
        return ba == 1 ? ValueCodec::unsignedInt(1)
                       : ValueCodec::twosComplement(ba);
    };
    auto intWeights = [](unsigned bw) {
        return bw == 1 ? ValueCodec::signedBinary()
                       : ValueCodec::twosComplement(bw);
    };
    if (name == "W1A3") return {intWeights(1), intActs(3)};
    if (name == "W1A4") return {intWeights(1), intActs(4)};
    if (name == "W2A2") return {intWeights(2), intActs(2)};
    if (name == "W4A4") return {intWeights(4), intActs(4)};
    if (name == "W1A2") return {intWeights(1), intActs(2)};
    if (name == "W2A4") return {intWeights(2), intActs(4)};
    if (name == "W1A8") return {intWeights(1), intActs(8)};
    LOCALUT_FATAL("unknown quantization preset '", name, "'");
}

QuantConfig
QuantConfig::fpPreset(unsigned bw, unsigned ba)
{
    ValueCodec w = bw == 1 ? ValueCodec::signedBinary()
                           : ValueCodec::twosComplement(bw);
    ValueCodec a = ValueCodec::fp16();
    if (ba == 4) {
        a = ValueCodec::fp4();
    } else if (ba == 8) {
        a = ValueCodec::fp8();
    } else {
        LOCALUT_REQUIRE(ba == 16, "fp activations must be 4/8/16 bits");
    }
    return {w, a};
}

std::vector<QuantConfig>
QuantConfig::paperConfigs()
{
    return {preset("W1A3"), preset("W1A4"), preset("W2A2"), preset("W4A4")};
}

float
QuantizedMatrix::valueAt(std::size_t r, std::size_t c) const
{
    return codec.decode(at(r, c)) * scale;
}

std::uint64_t
QuantizedMatrix::packedBytes() const
{
    return bytesForBits(static_cast<std::uint64_t>(rows) * cols *
                        codec.bits());
}

QuantizedMatrix
Quantizer::quantize(std::span<const float> data, std::size_t rows,
                    std::size_t cols, ValueCodec codec)
{
    LOCALUT_REQUIRE(data.size() == rows * cols,
                    "data size mismatch: ", data.size(), " vs ", rows * cols);
    float maxAbs = 0.0f;
    for (float v : data) {
        maxAbs = std::fmax(maxAbs, std::fabs(v));
    }
    QuantizedMatrix qm;
    qm.rows = rows;
    qm.cols = cols;
    qm.codec = codec;
    qm.scale = maxAbs > 0.0f ? maxAbs / codec.maxAbsValue() : 1.0f;
    qm.codes.resize(rows * cols);
    for (std::size_t i = 0; i < data.size(); ++i) {
        qm.codes[i] = static_cast<std::uint16_t>(
            codec.encodeNearest(data[i] / qm.scale));
    }
    return qm;
}

QuantizedMatrix
Quantizer::quantizeClipped(std::span<const float> data, std::size_t rows,
                           std::size_t cols, ValueCodec codec,
                           float clipStds)
{
    LOCALUT_REQUIRE(data.size() == rows * cols, "data size mismatch");
    LOCALUT_REQUIRE(clipStds > 0.0f, "clip factor must be positive");
    double sum = 0.0, sumSq = 0.0;
    for (float v : data) {
        sum += v;
        sumSq += static_cast<double>(v) * v;
    }
    const double nElems = static_cast<double>(data.size());
    const double var = std::max(0.0, sumSq / nElems -
                                         (sum / nElems) * (sum / nElems));
    const float clip = clipStds * static_cast<float>(std::sqrt(var));

    QuantizedMatrix qm;
    qm.rows = rows;
    qm.cols = cols;
    qm.codec = codec;
    qm.scale = clip > 0.0f ? clip / codec.maxAbsValue() : 1.0f;
    qm.codes.resize(rows * cols);
    for (std::size_t i = 0; i < data.size(); ++i) {
        qm.codes[i] = static_cast<std::uint16_t>(
            codec.encodeNearest(data[i] / qm.scale));
    }
    return qm;
}

float
Quantizer::recommendedClipStds(unsigned bits)
{
    // ACIQ-style optimal clipping of a Gaussian for b-bit uniform grids.
    switch (bits) {
      case 1:  return 1.0f;
      case 2:  return 1.7f;
      case 3:  return 2.5f;
      case 4:  return 3.9f;
      default: return 5.0f;
    }
}

std::vector<float>
Quantizer::dequantize(const QuantizedMatrix& qm)
{
    std::vector<float> out(qm.rows * qm.cols);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = qm.codec.decode(qm.codes[i]) * qm.scale;
    }
    return out;
}

std::vector<std::int32_t>
referenceGemmInt(const QuantizedMatrix& w, const QuantizedMatrix& a)
{
    LOCALUT_REQUIRE(w.cols == a.rows, "GEMM shape mismatch: W is ", w.rows,
                    "x", w.cols, ", A is ", a.rows, "x", a.cols);
    LOCALUT_REQUIRE(w.codec.isInteger() && a.codec.isInteger(),
                    "integer reference GEMM on float codecs");
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    std::vector<std::int32_t> out(m * n, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const std::int32_t wv = w.codec.decodeInt(w.at(i, kk));
            if (wv == 0) {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j) {
                out[i * n + j] += wv * a.codec.decodeInt(a.at(kk, j));
            }
        }
    }
    return out;
}

std::vector<float>
referenceGemmFloat(const QuantizedMatrix& w, const QuantizedMatrix& a)
{
    LOCALUT_REQUIRE(w.cols == a.rows, "GEMM shape mismatch");
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    std::vector<float> out(m * n, 0.0f);
    std::vector<float> aDec(k * n);
    for (std::size_t i = 0; i < k * n; ++i) {
        aDec[i] = a.codec.decode(a.codes[i]);
    }
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float wv = w.codec.decode(w.at(i, kk));
            if (wv == 0.0f) {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j) {
                out[i * n + j] += wv * aDec[kk * n + j];
            }
        }
    }
    return out;
}

} // namespace localut
