#include "quant/codec.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace localut {

namespace {

/** Decodes IEEE binary16 bits to float. */
float
decodeFp16Bits(std::uint32_t code)
{
    const std::uint32_t sign = (code >> 15) & 1;
    const std::uint32_t exp = (code >> 10) & 0x1f;
    const std::uint32_t man = code & 0x3ff;
    float mag;
    if (exp == 0) {
        mag = std::ldexp(static_cast<float>(man), -24); // subnormal
    } else if (exp == 31) {
        mag = man == 0 ? std::numeric_limits<float>::infinity()
                       : std::numeric_limits<float>::quiet_NaN();
    } else {
        mag = std::ldexp(1.0f + static_cast<float>(man) / 1024.0f,
                         static_cast<int>(exp) - 15);
    }
    return sign ? -mag : mag;
}

/** Decodes OCP E4M3 (no infinities; S.1111.111 is NaN). */
float
decodeFp8Bits(std::uint32_t code)
{
    const std::uint32_t sign = (code >> 7) & 1;
    const std::uint32_t exp = (code >> 3) & 0xf;
    const std::uint32_t man = code & 0x7;
    float mag;
    if (exp == 0) {
        mag = std::ldexp(static_cast<float>(man), -9); // subnormal: m/8*2^-6
    } else if (exp == 15 && man == 7) {
        mag = std::numeric_limits<float>::quiet_NaN();
    } else {
        mag = std::ldexp(1.0f + static_cast<float>(man) / 8.0f,
                         static_cast<int>(exp) - 7);
    }
    return sign ? -mag : mag;
}

/** Decodes MXFP4 / E2M1: values {0, .5, 1, 1.5, 2, 3, 4, 6} with sign. */
float
decodeFp4Bits(std::uint32_t code)
{
    static constexpr float kMag[8] = {0.0f, 0.5f, 1.0f, 1.5f,
                                      2.0f, 3.0f, 4.0f, 6.0f};
    const float mag = kMag[code & 0x7];
    return (code & 0x8) ? -mag : mag;
}

} // namespace

ValueCodec
ValueCodec::unsignedInt(unsigned bits)
{
    LOCALUT_REQUIRE(bits >= 1 && bits <= 16, "unsupported bitwidth ", bits);
    return {CodecKind::UnsignedInt, bits};
}

ValueCodec
ValueCodec::twosComplement(unsigned bits)
{
    LOCALUT_REQUIRE(bits >= 2 && bits <= 16,
                    "two's complement needs >= 2 bits (got ", bits, ")");
    return {CodecKind::TwosComplement, bits};
}

ValueCodec
ValueCodec::signedBinary()
{
    return {CodecKind::SignedBinary, 1};
}

ValueCodec
ValueCodec::fp4()
{
    return {CodecKind::Fp4E2M1, 4};
}

ValueCodec
ValueCodec::fp8()
{
    return {CodecKind::Fp8E4M3, 8};
}

ValueCodec
ValueCodec::fp16()
{
    return {CodecKind::Fp16, 16};
}

bool
ValueCodec::isInteger() const
{
    switch (kind_) {
      case CodecKind::UnsignedInt:
      case CodecKind::TwosComplement:
      case CodecKind::SignedBinary:
        return true;
      default:
        return false;
    }
}

float
ValueCodec::decode(std::uint32_t code) const
{
    if (isInteger()) {
        return static_cast<float>(decodeInt(code));
    }
    switch (kind_) {
      case CodecKind::Fp4E2M1:
        return decodeFp4Bits(code);
      case CodecKind::Fp8E4M3:
        return decodeFp8Bits(code);
      case CodecKind::Fp16:
        return decodeFp16Bits(code);
      default:
        LOCALUT_PANIC("unreachable codec kind");
    }
}

std::int32_t
ValueCodec::decodeInt(std::uint32_t code) const
{
    LOCALUT_ASSERT(code < cardinality(), "code ", code, " out of range");
    switch (kind_) {
      case CodecKind::UnsignedInt:
        return static_cast<std::int32_t>(code);
      case CodecKind::TwosComplement: {
        const std::uint32_t signBit = 1u << (bits_ - 1);
        return (code & signBit)
                   ? static_cast<std::int32_t>(code) -
                         static_cast<std::int32_t>(1u << bits_)
                   : static_cast<std::int32_t>(code);
      }
      case CodecKind::SignedBinary:
        return code ? 1 : -1;
      default:
        LOCALUT_PANIC("decodeInt on float codec");
    }
}

std::uint32_t
ValueCodec::encodeNearest(float value) const
{
    switch (kind_) {
      case CodecKind::UnsignedInt: {
        const float hi = static_cast<float>(cardinality() - 1);
        const float clamped = std::fmin(std::fmax(value, 0.0f), hi);
        return static_cast<std::uint32_t>(std::lround(clamped));
      }
      case CodecKind::TwosComplement: {
        const std::int32_t lo = -static_cast<std::int32_t>(cardinality() / 2);
        const std::int32_t hi = static_cast<std::int32_t>(cardinality() / 2) - 1;
        std::int32_t q = static_cast<std::int32_t>(std::lround(value));
        q = std::max(lo, std::min(hi, q));
        return static_cast<std::uint32_t>(q) &
               static_cast<std::uint32_t>(cardinality() - 1);
      }
      case CodecKind::SignedBinary:
        return value >= 0.0f ? 1u : 0u;
      default: {
        // Small float spaces: exhaustive nearest-value search.  (fp16 has
        // 64K codes; encode is off the simulated critical path, so the scan
        // is acceptable and keeps the logic uniform and obviously correct.)
        std::uint32_t best = 0;
        float bestDist = std::numeric_limits<float>::infinity();
        for (std::uint64_t code = 0; code < cardinality(); ++code) {
            const float v = decode(static_cast<std::uint32_t>(code));
            if (std::isnan(v) || std::isinf(v)) {
                continue;
            }
            const float d = std::fabs(v - value);
            if (d < bestDist) {
                bestDist = d;
                best = static_cast<std::uint32_t>(code);
            }
        }
        return best;
      }
    }
}

float
ValueCodec::maxAbsValue() const
{
    switch (kind_) {
      case CodecKind::UnsignedInt:
        return static_cast<float>(cardinality() - 1);
      case CodecKind::TwosComplement:
        // Symmetric quantization range: +/- (2^(b-1) - 1), so that the
        // positive extreme is representable (the -2^(b-1) code is still
        // decodable but never produced by the quantizer).
        return static_cast<float>(cardinality() / 2 - 1);
      case CodecKind::SignedBinary:
        return 1.0f;
      case CodecKind::Fp4E2M1:
        return 6.0f;
      case CodecKind::Fp8E4M3:
        return 448.0f;
      case CodecKind::Fp16:
        return 65504.0f;
    }
    LOCALUT_PANIC("unreachable codec kind");
}

float
roundToFp16(float value)
{
    if (std::isnan(value)) {
        return value;
    }
    const float kMax = 65504.0f;
    if (value > kMax) {
        return std::numeric_limits<float>::infinity();
    }
    if (value < -kMax) {
        return -std::numeric_limits<float>::infinity();
    }
    const float mag = std::fabs(value);
    const float sign = std::signbit(value) ? -1.0f : 1.0f;
    if (mag < std::ldexp(1.0f, -14)) {
        // Subnormal range: quantum 2^-24.
        const float q = std::ldexp(1.0f, -24);
        return sign * std::nearbyint(mag / q) * q;
    }
    int exp;
    std::frexp(mag, &exp); // mag = m * 2^exp with m in [0.5, 1)
    // 11 significand bits total -> quantum 2^(exp - 11).
    const float q = std::ldexp(1.0f, exp - 11);
    return sign * std::nearbyint(mag / q) * q;
}

std::string
ValueCodec::name() const
{
    switch (kind_) {
      case CodecKind::UnsignedInt:
        return "uint" + std::to_string(bits_);
      case CodecKind::TwosComplement:
        return "int" + std::to_string(bits_);
      case CodecKind::SignedBinary:
        return "sbin";
      case CodecKind::Fp4E2M1:
        return "fp4";
      case CodecKind::Fp8E4M3:
        return "fp8";
      case CodecKind::Fp16:
        return "fp16";
    }
    LOCALUT_PANIC("unreachable codec kind");
}

} // namespace localut
