#ifndef LOCALUT_QUANT_CODEC_H_
#define LOCALUT_QUANT_CODEC_H_

/**
 * @file
 * Value codecs: the mapping between b-bit codes (LUT index symbols) and
 * numeric values.  LUT-based execution treats numbers purely as symbols
 * (paper Section VII-A / VIII), which is what lets the same machinery serve
 * two's-complement integers, signed-binary weights, and FP4/FP8/FP16 floats
 * without hardware changes.
 */

#include <cstdint>
#include <string>

namespace localut {

/** The supported symbol-to-value interpretations. */
enum class CodecKind {
    UnsignedInt,    ///< code -> code (e.g., Fig. 2's 1-bit {0,1} weights)
    TwosComplement, ///< b-bit two's complement (Fig. 2's 3-bit activations)
    SignedBinary,   ///< 1-bit {-1, +1} (BinaryBERT-style weights)
    Fp4E2M1,        ///< 4-bit float, 1-2-1 split, OCP MXFP4 value set
    Fp8E4M3,        ///< 8-bit float, OCP E4M3 (no infinities)
    Fp16,           ///< IEEE binary16
};

/**
 * A (kind, bitwidth) pair with decode/encode helpers.  Codecs are small
 * value types; pass them by value.
 */
class ValueCodec
{
  public:
    static ValueCodec unsignedInt(unsigned bits);
    static ValueCodec twosComplement(unsigned bits);
    static ValueCodec signedBinary();
    static ValueCodec fp4();
    static ValueCodec fp8();
    static ValueCodec fp16();

    CodecKind kind() const { return kind_; }
    unsigned bits() const { return bits_; }

    /** Number of distinct codes, 2^bits. */
    std::uint64_t cardinality() const { return std::uint64_t{1} << bits_; }

    /** True for the integer kinds (decodeInt is then exact). */
    bool isInteger() const;

    /** Decoded numeric value of @p code. */
    float decode(std::uint32_t code) const;

    /** Integer decode; panics for float kinds. */
    std::int32_t decodeInt(std::uint32_t code) const;

    /** Code whose decoded value is nearest to @p value (ties to smaller). */
    std::uint32_t encodeNearest(float value) const;

    /** Largest magnitude decodable value (for quantizer scale selection). */
    float maxAbsValue() const;

    /** Short name, e.g. "int4", "sbin", "fp8". */
    std::string name() const;

    bool operator==(const ValueCodec&) const = default;

  private:
    ValueCodec(CodecKind kind, unsigned bits) : kind_(kind), bits_(bits) {}

    CodecKind kind_;
    unsigned bits_;
};

/**
 * Rounds @p value to the nearest IEEE binary16 (round-to-nearest-even) and
 * returns it as float.  Used to model the b_o = 2-byte storage of
 * floating-point LUT entries (paper Section VI-K, Fig. 21b).
 */
float roundToFp16(float value);

} // namespace localut

#endif // LOCALUT_QUANT_CODEC_H_
