#ifndef LOCALUT_LOCALUT_H_
#define LOCALUT_LOCALUT_H_

/**
 * @file
 * Public facade for the LoCaLUT library.  Most applications only need:
 *
 *     #include "localut.h"
 *
 *     localut::InferenceSession session(localut::makeBackend("upmem"));
 *     auto problem = localut::makeRandomProblem(
 *         768, 768, 128, localut::QuantConfig::preset("W1A3"));
 *     auto id = session.submit(problem, localut::DesignPoint::LoCaLut);
 *     auto result = session.wait(id);
 *
 * The one-shot engine remains available for single GEMMs:
 *
 *     localut::GemmEngine engine(localut::PimSystemConfig::upmemServer());
 *     auto result = engine.run(problem, localut::DesignPoint::LoCaLut);
 *
 * See DESIGN.md for the module map and README.md for a walkthrough.
 */

#include "backend/backend.h"          // IWYU pragma: export
#include "backend/bankpim_backend.h"  // IWYU pragma: export
#include "backend/host_backend.h"     // IWYU pragma: export
#include "backend/upmem_backend.h"    // IWYU pragma: export
#include "baselines/pq_gemm.h"        // IWYU pragma: export
#include "banklevel/bank_pim.h"       // IWYU pragma: export
#include "common/parallel.h"          // IWYU pragma: export
#include "dram/timing.h"              // IWYU pragma: export
#include "hostsim/roofline.h"         // IWYU pragma: export
#include "kernels/design_point.h"     // IWYU pragma: export
#include "kernels/exec_engine.h"      // IWYU pragma: export
#include "kernels/functional.h"       // IWYU pragma: export
#include "kernels/gemm.h"             // IWYU pragma: export
#include "lut/canonical_lut.h"        // IWYU pragma: export
#include "lut/canonicalizer.h"        // IWYU pragma: export
#include "lut/capacity.h"             // IWYU pragma: export
#include "lut/packed_lut.h"           // IWYU pragma: export
#include "lut/perf_model.h"           // IWYU pragma: export
#include "lut/planner.h"              // IWYU pragma: export
#include "lut/reordering_lut.h"       // IWYU pragma: export
#include "lut/table_cache.h"          // IWYU pragma: export
#include "nn/accuracy_proxy.h"        // IWYU pragma: export
#include "nn/inference.h"             // IWYU pragma: export
#include "nn/transformer.h"           // IWYU pragma: export
#include "nn/workload.h"              // IWYU pragma: export
#include "quant/codec.h"              // IWYU pragma: export
#include "quant/quantizer.h"          // IWYU pragma: export
#include "serving/plan_cache.h"       // IWYU pragma: export
#include "serving/residency.h"        // IWYU pragma: export
#include "serving/scheduler.h"        // IWYU pragma: export
#include "serving/session.h"          // IWYU pragma: export
#include "serving/sharding.h"         // IWYU pragma: export
#include "serving/telemetry.h"        // IWYU pragma: export
#include "serving/token_engine.h"     // IWYU pragma: export
#include "upmem/cost_model.h"         // IWYU pragma: export
#include "upmem/params.h"             // IWYU pragma: export

#endif // LOCALUT_LOCALUT_H_
